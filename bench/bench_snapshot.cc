/// Snapshot load-vs-rebuild benchmark: the "build once, serve many" claim.
/// Builds the default index over the generator corpus, persists it with
/// SaveSnapshot, then times LoadSnapshot against the original Build (best of
/// --load_reps mmap loads) in both load modes: verified (checksums on — what
/// a server pays the first time it sees an artifact) and trusted
/// (verify_checksums=false — the steady-state "serve many" path for an
/// artifact it has already verified once). Loading replaces hashing every
/// value of every version into k+2 Bloom matrices with mapping a file, so
/// the acceptance target is >= 10x trusted-load speedup on the default
/// 8000-attribute corpus; the verified speedup is reported alongside.
///
/// The second claim is that serving from the mapped snapshot costs nothing:
/// the loaded index answers a mixed forward + reverse query workload through
/// zero-copy borrowed planes, and its throughput must stay within a few
/// percent of the heap-built index (acceptance: >= 0.95x).
///
/// Emits BENCH_snapshot.json (override with --json=PATH). With
/// --require_speedup=F the exit code is nonzero when load speedup < F or
/// the loaded/built throughput ratio drops below --require_throughput
/// (default 0.95).

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "obs/json.h"
#include "snapshot/snapshot.h"
#include "tind/index.h"

namespace tind {
namespace {

int Run(const Flags& flags) {
  auto generated = bench::BuildCorpus(flags, /*default_attributes=*/8000,
                                      /*default_days=*/200);
  const Dataset& dataset = generated.dataset;
  bench::PrintBanner(
      "Snapshot persistence: mmap load vs index rebuild",
      "loading bit planes beats rehashing every version into them",
      dataset);
  const ConstantWeight weight(dataset.domain().num_timestamps());
  const double require_speedup = flags.GetDouble("require_speedup", 0.0);
  const double require_throughput = flags.GetDouble("require_throughput", 0.95);
  const size_t load_reps = static_cast<size_t>(flags.GetInt("load_reps", 5));
  const size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 64));
  const size_t query_reps = static_cast<size_t>(flags.GetInt("query_reps", 3));
  const std::string json_path = flags.GetString("json", "BENCH_snapshot.json");
  const std::string snap_path =
      flags.GetString("snapshot", "bench_snapshot.tsnap");

  TindIndexOptions options;
  options.bloom_bits =
      static_cast<size_t>(flags.GetInt("bloom_bits", 4096));
  options.num_slices = static_cast<size_t>(flags.GetInt("slices", 16));
  options.epsilon = flags.GetDouble("eps", 3.0);
  options.delta = flags.GetInt("delta", 7);
  options.weight = &weight;

  // Rebuild cost: what every serving process pays without snapshots.
  Stopwatch build_watch;
  auto built = TindIndex::Build(dataset, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  const double build_ms = build_watch.ElapsedMillis();

  Stopwatch save_watch;
  const Status saved = (*built)->SaveSnapshot(snap_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  const double save_ms = save_watch.ElapsedMillis();
  uint64_t file_bytes = 0;
  {
    auto info = snapshot::ReadSnapshotInfo(snap_path);
    if (info.ok()) file_bytes = info->file_size;
  }

  // Load cost: best of N in each mode. Verified is the first-contact
  // setting (a server should not trust a snapshot it has not checked once);
  // trusted is every load after that, and is the path the speedup gate
  // holds to the 10x floor.
  std::unique_ptr<TindIndex> loaded;
  const auto time_loads = [&](bool verify, double* best_ms) -> int {
    SnapshotLoadOptions load_options;
    load_options.weight = &weight;
    load_options.verify_checksums = verify;
    for (size_t rep = 0; rep < load_reps; ++rep) {
      Stopwatch load_watch;
      auto result = TindIndex::LoadSnapshot(dataset, snap_path, load_options);
      const double ms = load_watch.ElapsedMillis();
      if (!result.ok()) {
        std::fprintf(stderr, "load (verify=%d) failed: %s\n", verify ? 1 : 0,
                     result.status().ToString().c_str());
        return 1;
      }
      if (rep == 0 || ms < *best_ms) *best_ms = ms;
      loaded = std::move(*result);
    }
    return 0;
  };
  double verified_ms_best = 0, trusted_ms_best = 0;
  if (time_loads(/*verify=*/true, &verified_ms_best) != 0) return 1;
  if (time_loads(/*verify=*/false, &trusted_ms_best) != 0) return 1;
  const double verified_speedup = build_ms / verified_ms_best;
  const double load_speedup = build_ms / trusted_ms_best;

  // Query throughput, built vs loaded, on the same mixed workload. The
  // loaded index reads mmap'd planes; after the first pass the pages are
  // resident and the only difference left is the borrowed-storage
  // indirection, which the kernels never see (same pointers, same layout).
  const std::vector<AttributeId> queries =
      bench::SampleQueries(dataset, num_queries,
                           static_cast<uint64_t>(flags.GetInt("seed", 7)));
  const TindParams params{options.epsilon, options.delta, &weight};
  const auto run_queries = [&](const TindIndex& index) {
    size_t results = 0;
    for (const AttributeId q : queries) {
      results += index.Search(dataset.attribute(q), params).size();
      results += index.ReverseSearch(dataset.attribute(q), params).size();
    }
    return results;
  };
  // Warm both (page in the snapshot, fault in the heap).
  const size_t built_results = run_queries(**built);
  const size_t loaded_results = run_queries(*loaded);
  if (built_results != loaded_results) {
    std::fprintf(stderr,
                 "FAIL: loaded index returned %zu results, built %zu\n",
                 loaded_results, built_results);
    return 1;
  }
  double built_ms_best = 0, loaded_ms_best = 0;
  for (size_t rep = 0; rep < query_reps; ++rep) {
    Stopwatch w1;
    (void)run_queries(**built);
    const double b = w1.ElapsedMillis();
    if (rep == 0 || b < built_ms_best) built_ms_best = b;
    Stopwatch w2;
    (void)run_queries(*loaded);
    const double l = w2.ElapsedMillis();
    if (rep == 0 || l < loaded_ms_best) loaded_ms_best = l;
  }
  const double throughput_ratio = built_ms_best / loaded_ms_best;

  TablePrinter table({"metric", "value"});
  table.AddRow({"build", bench::Ms(build_ms)});
  table.AddRow({"save", bench::Ms(save_ms)});
  table.AddRow({"load verified (best of " + std::to_string(load_reps) + ")",
                bench::Ms(verified_ms_best)});
  table.AddRow({"load trusted (best of " + std::to_string(load_reps) + ")",
                bench::Ms(trusted_ms_best)});
  char cell[32];
  std::snprintf(cell, sizeof(cell), "%.1fx", verified_speedup);
  table.AddRow({"verified load speedup", cell});
  std::snprintf(cell, sizeof(cell), "%.1fx", load_speedup);
  table.AddRow({"trusted load speedup", cell});
  table.AddRow({"snapshot bytes", std::to_string(file_bytes)});
  table.AddRow({"query built", bench::Ms(built_ms_best)});
  table.AddRow({"query loaded", bench::Ms(loaded_ms_best)});
  std::snprintf(cell, sizeof(cell), "%.3fx", throughput_ratio);
  table.AddRow({"loaded/built throughput", cell});
  bench::EmitTable(flags, table, "\nSnapshot load vs rebuild");

  obs::JsonValue report = obs::JsonValue::Object();
  report.Set("attributes", obs::JsonValue(static_cast<uint64_t>(dataset.size())));
  report.Set("bloom_bits", obs::JsonValue(static_cast<uint64_t>(options.bloom_bits)));
  report.Set("num_slices", obs::JsonValue(static_cast<uint64_t>(options.num_slices)));
  report.Set("build_ms", obs::JsonValue(build_ms));
  report.Set("save_ms", obs::JsonValue(save_ms));
  report.Set("load_verified_ms_best", obs::JsonValue(verified_ms_best));
  report.Set("load_trusted_ms_best", obs::JsonValue(trusted_ms_best));
  report.Set("load_verified_speedup", obs::JsonValue(verified_speedup));
  report.Set("load_speedup", obs::JsonValue(load_speedup));
  report.Set("snapshot_bytes", obs::JsonValue(file_bytes));
  report.Set("query_built_ms", obs::JsonValue(built_ms_best));
  report.Set("query_loaded_ms", obs::JsonValue(loaded_ms_best));
  report.Set("throughput_ratio", obs::JsonValue(throughput_ratio));

  bool gate_failed = false;
  if (require_speedup > 0 && load_speedup < require_speedup) {
    std::fprintf(stderr,
                 "FAIL: trusted load speedup %.1fx below required %.1fx\n",
                 load_speedup, require_speedup);
    gate_failed = true;
  }
  if (require_speedup > 0 && throughput_ratio < require_throughput) {
    std::fprintf(stderr,
                 "FAIL: loaded/built throughput %.3fx below required %.3fx\n",
                 throughput_ratio, require_throughput);
    gate_failed = true;
  }

  std::ofstream out(json_path, std::ios::trunc);
  if (!out.good()) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << report.Dump(2) << "\n";
  std::printf("wrote %s\n", json_path.c_str());
  std::remove(snap_path.c_str());
  return gate_failed ? 1 : 0;
}

}  // namespace
}  // namespace tind

int main(int argc, char** argv) {
  return tind::bench::RunHarness(argc, argv, tind::Run);
}
