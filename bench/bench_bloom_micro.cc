/// Microbenchmarks for the Bloom-filter bit-matrix machinery of Section 4.1:
/// filter construction at the paper's cardinalities, superset probes (AND of
/// the query's set rows) vs subset probes (AND-NOT of the query's zero rows
/// — the reverse-search direction whose cost grows with m, Figure 12).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bloom/bloom_filter.h"
#include "bloom/bloom_matrix.h"
#include "common/rng.h"

namespace tind {
namespace {

ValueSet RandomSet(Rng* rng, size_t cardinality, size_t universe) {
  std::vector<ValueId> vals;
  for (size_t i = 0; i < cardinality; ++i) {
    vals.push_back(static_cast<ValueId>(rng->Uniform(universe)));
  }
  return ValueSet::FromUnsorted(std::move(vals));
}

void BM_BloomFilterBuild(benchmark::State& state) {
  Rng rng(1);
  const ValueSet vs = RandomSet(&rng, 28, 100000);  // Paper avg cardinality.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BloomFilter::FromValueSet(vs, static_cast<size_t>(state.range(0)), 3));
  }
}
BENCHMARK(BM_BloomFilterBuild)->Arg(512)->Arg(4096)->ArgName("m");

struct MatrixFixture {
  BloomMatrix matrix;
  std::vector<ValueSet> sets;
  explicit MatrixFixture(size_t m, size_t columns) : matrix(m, 3, columns) {
    Rng rng(2);
    for (size_t c = 0; c < columns; ++c) {
      sets.push_back(RandomSet(&rng, 28, 5000));
      matrix.SetColumn(c, sets.back());
    }
  }
};

MatrixFixture* GetMatrix(size_t m, size_t columns) {
  static std::map<std::pair<size_t, size_t>, std::unique_ptr<MatrixFixture>>
      fixtures;
  auto& f = fixtures[{m, columns}];
  if (!f) f = std::make_unique<MatrixFixture>(m, columns);
  return f.get();
}

void BM_MatrixSupersetProbe(benchmark::State& state) {
  MatrixFixture* f = GetMatrix(static_cast<size_t>(state.range(0)),
                               static_cast<size_t>(state.range(1)));
  Rng rng(3);
  const ValueSet query = RandomSet(&rng, 28, 5000);
  const BloomFilter qf = f->matrix.MakeQueryFilter(query);
  for (auto _ : state) {
    BitVector candidates(f->matrix.num_columns(), true);
    f->matrix.QuerySupersets(qf, &candidates);
    benchmark::DoNotOptimize(candidates.Count());
  }
}
BENCHMARK(BM_MatrixSupersetProbe)
    ->ArgsProduct({{512, 4096}, {10000, 50000}})
    ->ArgNames({"m", "cols"});

void BM_MatrixSubsetProbe(benchmark::State& state) {
  MatrixFixture* f = GetMatrix(static_cast<size_t>(state.range(0)),
                               static_cast<size_t>(state.range(1)));
  Rng rng(4);
  const ValueSet query = RandomSet(&rng, 200, 5000);
  const BloomFilter qf = f->matrix.MakeQueryFilter(query);
  for (auto _ : state) {
    BitVector candidates(f->matrix.num_columns(), true);
    f->matrix.QuerySubsets(qf, &candidates);
    benchmark::DoNotOptimize(candidates.Count());
  }
}
BENCHMARK(BM_MatrixSubsetProbe)
    ->ArgsProduct({{512, 4096}, {10000, 50000}})
    ->ArgNames({"m", "cols"});

void BM_MatrixColumnInsert(benchmark::State& state) {
  Rng rng(5);
  const ValueSet vs = RandomSet(&rng, 28, 100000);
  BloomMatrix matrix(4096, 3, 1000);
  size_t c = 0;
  for (auto _ : state) {
    matrix.SetColumn(c++ % 1000, vs);
  }
}
BENCHMARK(BM_MatrixColumnInsert);

void BM_BitVectorAnd(benchmark::State& state) {
  Rng rng(6);
  BitVector a(static_cast<size_t>(state.range(0)), true);
  BitVector b(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < b.size(); i += 3) b.Set(i);
  for (auto _ : state) {
    BitVector c = a;
    c.And(b);
    benchmark::DoNotOptimize(c.Count());
  }
}
BENCHMARK(BM_BitVectorAnd)->Arg(10000)->Arg(1000000)->ArgName("bits");

}  // namespace
}  // namespace tind

BENCHMARK_MAIN();
