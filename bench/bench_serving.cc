/// bench_serving: latency-vs-QPS curves for the tind_serve query service,
/// plus a deliberate overload stage.
///
///   bench_serving --attributes=240 --days=1000 --sweep=25,50,100,200,400
///       --json=BENCH_serving.json
///
/// Phase 1 sweeps an open-loop QPS ladder against an in-process TindServer
/// and locates the *knee*: the highest offered rate the server absorbs with
/// <1% shedding and every request accounted. Points past the knee are where
/// queueing delay (measured from each request's scheduled arrival — the
/// open loop charges the server for its backlog) turns the latency curve
/// vertical.
///
/// Phase 2 offers >= 2x the knee from more concurrent clients than the
/// admission bound allows (max_attempts=1, so every shed is a terminal,
/// *typed* outcome) and asserts the overload contract:
///   * the server sheds with typed Overloaded errors instead of hanging —
///     every offered request reaches a terminal outcome;
///   * the admission MemoryBudget is respected (rejections counted exactly,
///     all reservations released afterwards);
///   * the p99 of requests the server *did* accept stays within the
///     deadline budget (the watcher cancels the rest mid-funnel).
///
/// The JSON document (BENCH_serving.json) is validated in CI against
/// bench/baselines/serving.json; schema is shared with the tind_load tool.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/memory_budget.h"
#include "common/table_printer.h"
#include "obs/json.h"
#include "serve/load.h"
#include "serve/server.h"
#include "temporal/weights.h"
#include "tind/index.h"

namespace tind {
namespace {

int RunServing(const Flags& flags) {
  wiki::GeneratedDataset corpus = bench::BuildCorpus(flags, 240, 1000);
  const Dataset& dataset = corpus.dataset;
  bench::PrintBanner(
      "serving", "overload-resilient query service: knee + typed shedding",
      dataset);

  const ConstantWeight weight(dataset.domain().num_timestamps());
  TindIndexOptions index_options;
  index_options.bloom_bits = 512;
  index_options.num_slices = 4;
  index_options.build_reverse_index = true;
  index_options.reverse_slices = 2;
  index_options.weight = &weight;
  auto index_or = TindIndex::Build(dataset, index_options);
  if (!index_or.ok()) {
    std::fprintf(stderr, "index build: %s\n",
                 index_or.status().ToString().c_str());
    return 1;
  }
  const TindParams params{3.0, 7, &weight};

  MemoryBudget budget(static_cast<size_t>(flags.GetInt("memory_mb", 64))
                      << 20);
  serve::ServerOptions server_options;
  server_options.max_inflight =
      static_cast<size_t>(flags.GetInt("max_inflight", 16));
  server_options.degrade_watermark =
      static_cast<size_t>(flags.GetInt("degrade_watermark", 8));
  server_options.default_deadline_ms =
      static_cast<uint32_t>(flags.GetInt("deadline_ms", 200));
  server_options.max_connections = 128;
  server_options.memory = &budget;
  serve::TindServer server(**index_or, params, server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start: %s\n", started.ToString().c_str());
    return 1;
  }

  serve::LoadOptions base;
  base.client.port = server.port();
  base.client.allow_degraded = true;
  base.client.max_attempts =
      static_cast<uint32_t>(flags.GetInt("max_attempts", 3));
  base.qps = 100;
  base.duration_s = flags.GetDouble("duration_s", 1.0);
  base.workers = static_cast<size_t>(flags.GetInt("workers", 8));
  base.reverse_fraction = 0.25;
  base.discovery_fraction = 0.05;
  base.num_attributes = dataset.size();
  base.seed = static_cast<uint64_t>(flags.GetInt("load_seed", 11));

  const std::vector<double> ladder =
      flags.GetDoubleList("sweep", {25, 50, 100, 200, 400});
  serve::SweepResult sweep = serve::RunQpsSweep(base, ladder);

  TablePrinter table(
      {"qps", "offered", "ok", "degraded", "shed", "p50 ms", "p99 ms"});
  for (const serve::SweepPoint& point : sweep.points) {
    const serve::LoadReport& r = point.report;
    table.AddRow({std::to_string(static_cast<int>(point.qps)),
                  std::to_string(r.offered), std::to_string(r.ok),
                  std::to_string(r.degraded), std::to_string(r.shed),
                  bench::Ms(r.p50_ms), bench::Ms(r.p99_ms)});
  }
  bench::EmitTable(flags, table, "latency vs offered QPS (open loop)");
  std::printf("knee: %.0f qps (highest rung with <1%% shed, all accounted)\n",
              sweep.knee_qps);

  // ---- Streaming phase: the same server, every query issued through the
  // progressive kSearchStream op. Measures time-to-first-result (the
  // stage-1 sound superset frame) against time-to-exact over the wire, at
  // a comfortable rate below the knee so queueing does not pollute TTFR.
  serve::LoadOptions streaming = base;
  streaming.qps = std::max(25.0, sweep.knee_qps / 2.0);
  streaming.discovery_fraction = 0.0;
  streaming.stream_fraction = 1.0;
  const serve::LoadReport stream_report = serve::RunOpenLoopLoad(streaming);
  std::printf(
      "streaming @ %.0f qps: streams=%llu partials=%llu ok=%llu "
      "ttfr p50/p99=%.2f/%.2f ms  exact p50/p99=%.2f/%.2f ms\n",
      streaming.qps, static_cast<unsigned long long>(stream_report.streams),
      static_cast<unsigned long long>(stream_report.stream_partials),
      static_cast<unsigned long long>(stream_report.ok),
      stream_report.ttfr_p50_ms, stream_report.ttfr_p99_ms,
      stream_report.p50_ms, stream_report.p99_ms);

  server.Shutdown();
  const auto counters = server.counters();

  // ---- Overload stage: >= 2x knee against a harshly provisioned server.
  // Raw capacity is machine-dependent, so the storm targets a server whose
  // admission bound is small and whose group-commit linger is long: with
  // qps * linger > max_inflight, every commit window accumulates more
  // arrivals than there are slots, and the surplus MUST be shed — typed,
  // on any machine. Accepted requests still finish well inside their
  // deadline (linger + execution << deadline).
  serve::ServerOptions storm_options = server_options;
  storm_options.max_inflight = 8;
  storm_options.degrade_watermark = 6;
  storm_options.batch_linger_us = 40000;
  serve::TindServer storm_server(**index_or, params, storm_options);
  const Status storm_started = storm_server.Start();
  if (!storm_started.ok()) {
    std::fprintf(stderr, "storm server start: %s\n",
                 storm_started.ToString().c_str());
    return 1;
  }
  const double overload_qps =
      std::max(2.0 * sweep.knee_qps, 2.0 * ladder.back());
  serve::LoadOptions overload = base;
  overload.client.port = storm_server.port();
  overload.qps = overload_qps;
  overload.workers =
      std::max<size_t>(3 * storm_options.max_inflight, base.workers);
  overload.client.max_attempts = 1;  // Sheds stay visible as typed outcomes.
  const serve::LoadReport storm = serve::RunOpenLoopLoad(overload);
  const double p99_accepted_ms = storm_server.LatencyPercentileMs(99);
  storm_server.Shutdown();

  std::printf(
      "overload @ %.0f qps (%zu clients vs %zu slots): offered=%llu ok=%llu "
      "shed=%llu deadline=%llu budget_rejections=%llu p99(accepted)=%.1f ms\n",
      overload_qps, overload.workers, storm_options.max_inflight,
      static_cast<unsigned long long>(storm.offered),
      static_cast<unsigned long long>(storm.ok),
      static_cast<unsigned long long>(storm.shed),
      static_cast<unsigned long long>(storm.deadline_exceeded),
      static_cast<unsigned long long>(budget.rejections()), p99_accepted_ms);

  // The overload contract, asserted here and again by the CI baseline.
  int failures = 0;
  const auto check = [&failures](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) ++failures;
  };
  check(stream_report.AllAccounted(),
        "every streamed request reached a terminal outcome (zero hung)");
  check(stream_report.streams > 0 &&
            stream_report.stream_partials >= stream_report.ok,
        "every successful stream delivered a partial frame before the exact "
        "answer");
  check(stream_report.ttfr_p50_ms > 0,
        "time-to-first-result was measured for streamed queries");
  check(storm.AllAccounted(),
        "every overload request reached a terminal outcome (zero hung)");
  check(storm.shed > 0, "overload was shed with typed Overloaded errors");
  check(storm.ok > 0, "accepted requests were still answered under overload");
  check(budget.used() == 0,
        "admission budget fully released after the storm");
  const double deadline_bound_ms =
      static_cast<double>(server_options.default_deadline_ms) + 300.0;
  check(p99_accepted_ms <= deadline_bound_ms,
        "p99 of accepted requests within the deadline budget");

  obs::JsonValue json = serve::SweepToJson(sweep);
  auto storm_json = obs::JsonValue::Object();
  storm_json.Set("qps", overload_qps);
  storm_json.Set("workers", static_cast<uint64_t>(overload.workers));
  storm_json.Set("offered", storm.offered);
  storm_json.Set("ok", storm.ok);
  storm_json.Set("degraded", storm.degraded);
  storm_json.Set("shed", storm.shed);
  storm_json.Set("deadline_exceeded", storm.deadline_exceeded);
  storm_json.Set("all_accounted", storm.AllAccounted());
  storm_json.Set("budget_rejections", budget.rejections());
  storm_json.Set("budget_used_after", static_cast<uint64_t>(budget.used()));
  storm_json.Set("p99_accepted_ms", p99_accepted_ms);
  storm_json.Set("p99_within_deadline", p99_accepted_ms <= deadline_bound_ms);
  json.Set("overload", std::move(storm_json));
  auto streaming_json = obs::JsonValue::Object();
  streaming_json.Set("qps", streaming.qps);
  streaming_json.Set("offered", stream_report.offered);
  streaming_json.Set("ok", stream_report.ok);
  streaming_json.Set("streams", stream_report.streams);
  streaming_json.Set("stream_partials", stream_report.stream_partials);
  streaming_json.Set("all_accounted", stream_report.AllAccounted());
  streaming_json.Set("ttfr_p50_ms", stream_report.ttfr_p50_ms);
  streaming_json.Set("ttfr_p99_ms", stream_report.ttfr_p99_ms);
  streaming_json.Set("p50_ms", stream_report.p50_ms);
  streaming_json.Set("p99_ms", stream_report.p99_ms);
  json.Set("streaming", std::move(streaming_json));
  auto server_json = obs::JsonValue::Object();
  server_json.Set("accepted", counters.accepted);
  server_json.Set("completed", counters.completed);
  server_json.Set("degraded", counters.degraded);
  server_json.Set("shed", counters.shed);
  server_json.Set("deadline_exceeded", counters.deadline_exceeded);
  json.Set("server", std::move(server_json));

  const std::string json_path =
      flags.GetString("json", "BENCH_serving.json");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const std::string text = json.Dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace tind

int main(int argc, char** argv) {
  return tind::bench::RunHarness(argc, argv, tind::RunServing);
}
