/// Figure 7: query runtime distributions for different numbers of indexed
/// attributes — tIND search, reverse tIND search, and the k-MANY baseline.
/// Paper shape: median < 100 ms at every size; search mean 63 ms at 1.3 M
/// attributes; reverse ≈ 2.3× search; k-MANY more than one order of
/// magnitude slower with extreme outliers, and OOM from 1.2 M attributes
/// (it must track violations for all candidates). The OOM is reproduced
/// deterministically with a byte budget covering per-query violation
/// arrays across the paper's 32-way query concurrency.

#include <cstdio>
#include <memory>

#include "baseline/k_many.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "tind/index.h"

namespace tind {
namespace {

int Run(const Flags& flags) {
  const std::vector<int64_t> sizes =
      flags.GetIntList("sizes", {1000, 2000, 4000, 8000});
  const size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 300));
  const int64_t days = flags.GetInt("days", 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const size_t concurrency =
      static_cast<size_t>(flags.GetInt("simulated_concurrency", 32));
  // Budget for query-time state, sized so k-MANY's Θ(|D|)-per-query
  // violation arrays stop fitting at the largest size (Figure 7's OOM).
  const size_t budget_bytes = static_cast<size_t>(flags.GetInt(
      "kmany_query_budget",
      static_cast<int64_t>(sizes.back()) * 8 * static_cast<int64_t>(concurrency) * 3 / 4));

  TablePrinter table({"attributes", "system", "mean ms", "median ms", "p95 ms",
                      "max ms", "<100ms", "<1s"});

  for (const int64_t size : sizes) {
    auto generated =
        wiki::WikiGenerator(bench::ScaledOptions(static_cast<size_t>(size), days, seed))
            .GenerateDataset();
    if (!generated.ok()) {
      std::fprintf(stderr, "generation failed\n");
      return 1;
    }
    const Dataset& dataset = generated->dataset;
    if (size == sizes.front()) {
      bench::PrintBanner(
          "Figure 7: runtime vs number of indexed attributes",
          "search median <100ms at all sizes (mean 63ms @1.3M); reverse "
          "~2.3x; k-MANY >=10x slower, OOM at 1.2M",
          dataset);
    }
    const ConstantWeight weight(dataset.domain().num_timestamps());
    const TindParams params{3.0, 7, &weight};
    const auto queries = bench::SampleQueries(dataset, num_queries, seed + 1);

    // --- tIND search -----------------------------------------------------
    TindIndexOptions opts;
    opts.bloom_bits = static_cast<size_t>(flags.GetInt("bloom_bits", 4096));
    opts.num_slices = static_cast<size_t>(flags.GetInt("slices", 16));
    opts.delta = 7;
    opts.epsilon = 3.0;
    opts.weight = &weight;
    opts.seed = seed;
    Stopwatch build_timer;
    auto index = TindIndex::Build(dataset, opts);
    if (!index.ok()) {
      std::fprintf(stderr, "index build failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    const double build_s = build_timer.ElapsedSeconds();
    RuntimeStats search_stats;
    for (const AttributeId q : queries) {
      Stopwatch sw;
      (void)(*index)->Search(dataset.attribute(q), params);
      search_stats.Add(sw.ElapsedMillis());
    }
    const auto add_row = [&](const std::string& name, const RuntimeStats& s) {
      table.AddRow({TablePrinter::FormatInt(size), name,
                    bench::Ms(s.Mean()), bench::Ms(s.Median()),
                    bench::Ms(s.Percentile(95)), bench::Ms(s.Max()),
                    TablePrinter::FormatPercent(s.FractionBelow(100)),
                    TablePrinter::FormatPercent(s.FractionBelow(1000))});
    };
    add_row("tIND search", search_stats);

    // --- reverse tIND search ----------------------------------------------
    RuntimeStats reverse_stats;
    for (const AttributeId q : queries) {
      Stopwatch sw;
      (void)(*index)->ReverseSearch(dataset.attribute(q), params);
      reverse_stats.Add(sw.ElapsedMillis());
    }
    add_row("reverse search", reverse_stats);
    std::printf("  [%lld attrs] index build %.1fs, memory %.1f MB\n",
                static_cast<long long>(size), build_s,
                static_cast<double>((*index)->MemoryUsageBytes()) / (1 << 20));

    // --- k-MANY -----------------------------------------------------------
    MemoryBudget budget(budget_bytes);
    KManyOptions km_opts;
    km_opts.bloom_bits = opts.bloom_bits;
    km_opts.num_snapshots = opts.num_slices;  // Fair comparison (Section 5.1).
    km_opts.seed = seed;
    km_opts.approximate_delta_pruning = true;
    km_opts.memory = &budget;
    auto kmany = KMany::Build(dataset, km_opts);
    if (!kmany.ok()) {
      table.AddRow({TablePrinter::FormatInt(size), "k-MANY",
                    "OOM (build)", "-", "-", "-", "-", "-"});
      continue;
    }
    // Reserve the violation arrays the other (concurrency-1) in-flight
    // queries would hold on the paper's 32-thread setup.
    const size_t others =
        (concurrency - 1) * static_cast<size_t>(size) * sizeof(double);
    if (!budget.Allocate(others).ok()) {
      table.AddRow({TablePrinter::FormatInt(size), "k-MANY", "OOM", "-", "-",
                    "-", "-", "-"});
      continue;
    }
    RuntimeStats km_stats;
    bool oom = false;
    for (const AttributeId q : queries) {
      Stopwatch sw;
      const auto r = (*kmany)->Search(dataset.attribute(q), params);
      if (!r.ok()) {
        oom = true;
        break;
      }
      km_stats.Add(sw.ElapsedMillis());
    }
    budget.Free(others);
    if (oom) {
      table.AddRow({TablePrinter::FormatInt(size), "k-MANY", "OOM", "-", "-",
                    "-", "-", "-"});
    } else {
      add_row("k-MANY", km_stats);
    }
  }
  bench::EmitTable(flags, table, "\nFigure 7 series");
  return 0;
}

}  // namespace
}  // namespace tind

int main(int argc, char** argv) {
  return tind::bench::RunHarness(argc, argv, tind::Run);
}
