#ifndef TIND_BENCH_BENCH_UTIL_H_
#define TIND_BENCH_BENCH_UTIL_H_

/// \file bench_util.h
/// Shared plumbing for the experiment harnesses: corpus construction scaled
/// to a target attribute count, query sampling, result-table printing, and
/// the observability hookup. Every harness accepts flags to re-run at paper
/// scale:
///   --attributes=N --days=N --queries=N --seed=N --csv
/// and exports the metrics registry (per-phase spans, probe counters) with:
///   --metrics_json=out.json   or   --metrics_csv=out.csv

#include <cstdint>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table_printer.h"
#include "eval/runtime_stats.h"
#include "temporal/dataset.h"
#include "wiki/generator.h"

namespace tind::bench {

/// Standard harness entry point: parses argv, enables the global metrics
/// registry when --metrics_json/--metrics_csv/--metrics is present, invokes
/// `run`, exports the registry, and returns `run`'s exit code. Metrics stay
/// fully disabled (zero overhead) unless one of those flags was passed.
int RunHarness(int argc, char** argv, int (*run)(const Flags&));

/// The pieces of RunHarness, for harnesses with their own main shape.
void InitMetrics(const Flags& flags);
void FinishMetrics(const Flags& flags);

/// Scales the generator so the surviving corpus lands near
/// `target_attributes` with the §5.1 mix of genuine families, noise, and
/// registry attributes.
wiki::GeneratorOptions ScaledOptions(size_t target_attributes, int64_t days,
                                     uint64_t seed);

/// Builds a corpus from --attributes / --days / --seed (with the given
/// defaults). Prints a one-line summary. Aborts on generation failure.
wiki::GeneratedDataset BuildCorpus(const Flags& flags,
                                   size_t default_attributes,
                                   int64_t default_days = 3000,
                                   uint64_t default_seed = 7);

/// Samples `count` query attribute ids uniformly (seeded).
std::vector<AttributeId> SampleQueries(const Dataset& dataset, size_t count,
                                       uint64_t seed);

/// Prints the table and, when --csv was passed, the CSV form too.
void EmitTable(const Flags& flags, const TablePrinter& table,
               const std::string& title);

/// Standard experiment banner with the corpus stats line.
void PrintBanner(const std::string& experiment, const std::string& paper_claim,
                 const Dataset& dataset);

/// Formats a latency summary cell ("12.3 / 45.6" mean/median style).
std::string Ms(double v);

}  // namespace tind::bench

#endif  // TIND_BENCH_BENCH_UTIL_H_
