/// bench_progressive: anytime-query latency — time-to-first-result vs
/// time-to-exact through the staged SearchCursor, plus the cost-model
/// planner's effect on exact latency.
///
///   bench_progressive --attributes=8000 --queries=400
///       --json=BENCH_progressive.json
///
/// Three measured modes over the same query sample:
///   * exact      — the monolithic TindIndex::Search / ReverseSearch call
///                  (the baseline the staged pipeline must not regress);
///   * stage-1    — SearchCursor stopped after the M_T/M_R probe: the
///                  microseconds-latency sound superset a streaming client
///                  acts on first (TTFR);
///   * planner    — SearchCursor with the CostModelPlanner choosing per
///                  query which prune stages to skip, run to the exact
///                  answer.
///
/// The bench asserts (and records in the JSON) the two contracts CI gates
/// on: *parity* — staged and planner-driven execution return bit-identical
/// result lists to the monolithic call on every query — and the *TTFR
/// floor* — stage-1 p99 latency is a large factor below exact p99 (>= 10x
/// at the default 8000-attribute scale; the committed baseline asserts a
/// conservative floor so slow CI hardware does not flake). Planner-enabled
/// exact p99 must stay within a small factor of the baseline exact p99.
///
/// BENCH_progressive.json is validated in CI against
/// bench/baselines/progressive.json by tools/check_bench_json.py.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "obs/json.h"
#include "obs/latency.h"
#include "temporal/weights.h"
#include "tind/index.h"
#include "tind/planner.h"
#include "tind/progressive.h"

namespace tind {
namespace {

int RunProgressive(const Flags& flags) {
  wiki::GeneratedDataset corpus = bench::BuildCorpus(flags, 8000, 1000);
  const Dataset& dataset = corpus.dataset;
  bench::PrintBanner("progressive",
                     "anytime queries: stage-1 TTFR vs exact, planner parity",
                     dataset);

  const ConstantWeight weight(dataset.domain().num_timestamps());
  TindIndexOptions index_options;
  index_options.bloom_bits =
      static_cast<size_t>(flags.GetInt("bloom_bits", 2048));
  index_options.num_slices =
      static_cast<size_t>(flags.GetInt("slices", 16));
  index_options.build_reverse_index = true;
  index_options.reverse_slices = 2;
  index_options.weight = &weight;
  auto index_or = TindIndex::Build(dataset, index_options);
  if (!index_or.ok()) {
    std::fprintf(stderr, "index build: %s\n",
                 index_or.status().ToString().c_str());
    return 1;
  }
  const TindIndex& index = **index_or;
  const TindParams params{flags.GetDouble("eps", 3.0),
                          flags.GetInt("delta", 7), &weight};

  const size_t num_queries =
      static_cast<size_t>(flags.GetInt("queries", 400));
  const std::vector<AttributeId> queries = bench::SampleQueries(
      dataset, num_queries, static_cast<uint64_t>(flags.GetInt("seed", 7)));
  const double reverse_fraction = flags.GetDouble("reverse_frac", 0.25);

  CostModelPlanner planner(index);

  // Warm-up: run every query once unmeasured — page in the matrices and
  // feed the planner's EWMAs real observed stage costs before measuring.
  for (size_t i = 0; i < queries.size(); ++i) {
    const bool reverse =
        static_cast<double>(i % 100) < reverse_fraction * 100.0;
    SearchCursor::Options warm;
    warm.reverse = reverse;
    SearchCursor cursor(index, dataset.attribute(queries[i]), params, warm);
    cursor.RunToCompletion();
    planner.Observe(cursor.stats());
  }

  std::vector<double> exact_ms;
  std::vector<double> ttfr_ms;
  std::vector<double> planner_ms;
  exact_ms.reserve(queries.size());
  ttfr_ms.reserve(queries.size());
  planner_ms.reserve(queries.size());
  bool parity = true;
  uint64_t planner_skips = 0;

  for (size_t i = 0; i < queries.size(); ++i) {
    const bool reverse =
        static_cast<double>(i % 100) < reverse_fraction * 100.0;
    const AttributeHistory& query = dataset.attribute(queries[i]);

    Stopwatch exact_timer;
    const std::vector<AttributeId> exact =
        reverse ? index.ReverseSearch(query, params)
                : index.Search(query, params);
    exact_ms.push_back(exact_timer.ElapsedMillis());

    // Stage 1 only: the time until a streaming client holds the sound
    // superset (TTFR), then finish the cursor and check parity.
    SearchCursor::Options staged;
    staged.reverse = reverse;
    SearchCursor cursor(index, query, params, staged);
    Stopwatch ttfr_timer;
    cursor.Step();
    ttfr_ms.push_back(ttfr_timer.ElapsedMillis());
    parity = parity && cursor.RunToCompletion() == exact;

    SearchCursor::Options planned;
    planned.reverse = reverse;
    planned.planner = &planner;
    SearchCursor planned_cursor(index, query, params, planned);
    Stopwatch planner_timer;
    planned_cursor.RunToCompletion();
    planner_ms.push_back(planner_timer.ElapsedMillis());
    parity = parity && planned_cursor.results() == exact;
    if (planned_cursor.plan().skip_slices ||
        planned_cursor.plan().skip_recheck) {
      ++planner_skips;
    }
    planner.Observe(planned_cursor.stats());
  }

  const obs::LatencySummary exact_sum =
      obs::LatencySummary::FromSamples(exact_ms);
  const obs::LatencySummary ttfr_sum =
      obs::LatencySummary::FromSamples(ttfr_ms);
  const obs::LatencySummary planner_sum =
      obs::LatencySummary::FromSamples(planner_ms);
  const double ttfr_speedup =
      ttfr_sum.p99 > 0 ? exact_sum.p99 / ttfr_sum.p99 : 0;
  const double planner_ratio =
      exact_sum.p99 > 0 ? planner_sum.p99 / exact_sum.p99 : 0;

  TablePrinter table({"mode", "p50 ms", "p95 ms", "p99 ms", "max ms"});
  const auto row = [&](const char* name, const obs::LatencySummary& s) {
    table.AddRow({name, bench::Ms(s.p50), bench::Ms(s.p95), bench::Ms(s.p99),
                  bench::Ms(s.max)});
  };
  row("exact (monolithic)", exact_sum);
  row("stage-1 TTFR", ttfr_sum);
  row("planner exact", planner_sum);
  bench::EmitTable(flags, table, "anytime query latency");
  std::printf(
      "parity=%s  ttfr_speedup(p99)=%.1fx  planner_ratio(p99)=%.2fx  "
      "planner_skips=%llu/%zu\n",
      parity ? "true" : "FALSE", ttfr_speedup, planner_ratio,
      static_cast<unsigned long long>(planner_skips), queries.size());

  bool failed = false;
  const auto check = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      failed = true;
    }
  };
  check(parity, "staged + planner results bit-identical to monolithic");
  check(ttfr_speedup >= flags.GetDouble("require_ttfr_speedup", 2.0),
        "stage-1 TTFR p99 materially below exact p99");
  check(planner_ratio <= flags.GetDouble("max_planner_ratio", 1.5),
        "planner-enabled exact latency within budget of baseline");

  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    obs::JsonValue root = obs::JsonValue::Object();
    root.Set("attributes", obs::JsonValue(static_cast<uint64_t>(dataset.size())));
    root.Set("queries", obs::JsonValue(static_cast<uint64_t>(queries.size())));
    root.Set("parity", obs::JsonValue(parity));
    root.Set("planner_skips", obs::JsonValue(planner_skips));
    const auto emit = [&](const char* prefix, const obs::LatencySummary& s) {
      root.Set(std::string(prefix) + "_p50_ms", obs::JsonValue(s.p50));
      root.Set(std::string(prefix) + "_p95_ms", obs::JsonValue(s.p95));
      root.Set(std::string(prefix) + "_p99_ms", obs::JsonValue(s.p99));
      root.Set(std::string(prefix) + "_max_ms", obs::JsonValue(s.max));
    };
    emit("exact", exact_sum);
    emit("ttfr", ttfr_sum);
    emit("planner", planner_sum);
    root.Set("ttfr_speedup", obs::JsonValue(ttfr_speedup));
    root.Set("planner_ratio", obs::JsonValue(planner_ratio));
    const std::string text = root.Dump(2);
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace tind

int main(int argc, char** argv) {
  return tind::bench::RunHarness(argc, argv, tind::RunProgressive);
}
