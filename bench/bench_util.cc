#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace tind::bench {

void InitMetrics(const Flags& flags) {
  if (flags.Has("metrics_json") || flags.Has("metrics_csv") ||
      flags.GetBool("metrics", false)) {
    obs::MetricsRegistry::Global().set_enabled(true);
  }
}

void FinishMetrics(const Flags& flags) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (!registry.enabled()) return;
  const std::string json_path = flags.GetString("metrics_json", "");
  if (!json_path.empty()) {
    if (registry.WriteJsonFile(json_path)) {
      std::printf("metrics written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   json_path.c_str());
    }
  }
  const std::string csv_path = flags.GetString("metrics_csv", "");
  if (!csv_path.empty()) {
    std::FILE* f = std::fopen(csv_path.c_str(), "w");
    if (f != nullptr) {
      const std::string csv = registry.ToCsv();
      std::fwrite(csv.data(), 1, csv.size(), f);
      std::fclose(f);
      std::printf("metrics written to %s\n", csv_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   csv_path.c_str());
    }
  }
  if (json_path.empty() && csv_path.empty()) {
    // --metrics with no file: dump to stdout for quick inspection.
    std::printf("%s\n", registry.ToJsonString().c_str());
  }
}

int RunHarness(int argc, char** argv, int (*run)(const Flags&)) {
  const Flags flags = Flags::Parse(argc, argv);
  InitMetrics(flags);
  const int rc = run(flags);
  FinishMetrics(flags);
  return rc;
}

wiki::GeneratorOptions ScaledOptions(size_t target_attributes, int64_t days,
                                     uint64_t seed) {
  wiki::GeneratorOptions opts;
  opts.seed = seed;
  opts.num_days = days;
  // A family yields ~4 attributes (root + children + chains) on average.
  // Mix: ~30% family attributes, ~45% Zipf noise, ~18% drifters, plus a
  // handful of registry attributes — calibrated so static-IND precision,
  // the Table-2 buckets and the Fig.-15 curves land near the paper's.
  opts.num_families = std::max<size_t>(2, target_attributes / 14);
  opts.num_noise_attributes =
      std::max<size_t>(8, target_attributes * 45 / 100);
  opts.num_drifter_attributes =
      std::max<size_t>(4, target_attributes * 18 / 100);
  opts.num_catchall_attributes =
      std::min<size_t>(48, std::max<size_t>(2, target_attributes / 160));
  // Vocabulary scales sublinearly: web-table value domains are shared.
  opts.shared_vocabulary =
      std::max<size_t>(150, target_attributes / 4);
  opts.entities_per_family_pool = 120;
  return opts;
}

wiki::GeneratedDataset BuildCorpus(const Flags& flags,
                                   size_t default_attributes,
                                   int64_t default_days, uint64_t default_seed) {
  const size_t attributes = static_cast<size_t>(
      flags.GetInt("attributes", static_cast<int64_t>(default_attributes)));
  const int64_t days = flags.GetInt("days", default_days);
  const uint64_t seed =
      static_cast<uint64_t>(flags.GetInt("seed", static_cast<int64_t>(default_seed)));
  Stopwatch timer;
  auto generated =
      wiki::WikiGenerator(ScaledOptions(attributes, days, seed)).GenerateDataset();
  if (!generated.ok()) {
    std::cerr << "corpus generation failed: " << generated.status().ToString()
              << "\n";
    std::exit(1);
  }
  const DatasetStats stats = generated->dataset.ComputeStats();
  std::printf(
      "corpus: %zu attributes, %lld days, avg %.1f changes, avg card %.1f, "
      "%zu genuine pairs planted, built in %.1fs\n",
      stats.num_attributes, static_cast<long long>(days), stats.avg_changes,
      stats.avg_version_cardinality, generated->ground_truth.size(),
      timer.ElapsedSeconds());
  return std::move(*generated);
}

std::vector<AttributeId> SampleQueries(const Dataset& dataset, size_t count,
                                       uint64_t seed) {
  Rng rng(seed ^ 0x9E3779B97F4A7C15ULL);
  std::vector<AttributeId> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    queries.push_back(static_cast<AttributeId>(rng.Uniform(dataset.size())));
  }
  return queries;
}

void EmitTable(const Flags& flags, const TablePrinter& table,
               const std::string& title) {
  table.Print(std::cout, title);
  if (flags.GetBool("csv", false)) {
    std::cout << "\nCSV:\n";
    table.PrintCsv(std::cout);
  }
  std::cout << "\n";
}

void PrintBanner(const std::string& experiment, const std::string& paper_claim,
                 const Dataset& dataset) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("corpus: %zu attributes over %lld timestamps\n", dataset.size(),
              static_cast<long long>(dataset.domain().num_timestamps()));
  std::printf("==============================================================\n");
}

std::string Ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace tind::bench
