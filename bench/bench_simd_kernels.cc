/// SIMD kernel benchmark: Bloom-matrix probing throughput (rows/s) per
/// dispatch backend, forward (QuerySupersets) and reverse (QuerySubsets),
/// through the batch kernel at group widths 1 and 64. The workload is the
/// matrix scan itself — no corpus generation, no validation — so the numbers
/// isolate exactly what the SIMD layer accelerates: the row-AND/row-ANDNOT
/// inner loops over 64-byte-aligned padded column words.
///
/// Emits BENCH_simd_kernels.json (override with --json=PATH) with per-backend
/// rows/s and the headline scalar-vs-best-vector aggregate speedup, and exits
/// nonzero when --require_speedup=F is given, a vector ISA is available, and
/// the best vector backend's aggregate rows/s falls below F times scalar's.
/// When only the scalar backend exists (no vector ISA compiled in or
/// detected), the gate is skipped — CI only enforces it on machines where a
/// vector backend actually runs.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bloom/bloom_matrix.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "obs/json.h"

namespace tind {
namespace {

ValueSet RandomValueSet(Rng* rng, size_t n, uint32_t universe) {
  std::vector<ValueId> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(static_cast<ValueId>(rng->Uniform(universe)));
  }
  return ValueSet::FromUnsorted(std::move(values));
}

int Run(const Flags& flags) {
  const size_t num_columns =
      static_cast<size_t>(flags.GetInt("columns", 8000));
  const size_t bloom_bits =
      static_cast<size_t>(flags.GetInt("bloom_bits", 4096));
  const size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 192));
  const size_t values_per_column =
      static_cast<size_t>(flags.GetInt("values", 30));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const double require_speedup = flags.GetDouble("require_speedup", 0.0);
  const std::string json_path =
      flags.GetString("json", "BENCH_simd_kernels.json");
  const std::vector<int64_t> batch_sizes =
      flags.GetIntList("batch_sizes", {1, 64});

  // The dispatch record first: CI redirects this to backend-selection.log.
  std::printf("%s", simd::SelectionLog().c_str());

  Rng rng(seed);
  BloomMatrix matrix(bloom_bits, /*num_hashes=*/2, num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    matrix.SetColumn(c, RandomValueSet(&rng, values_per_column, 4000));
  }
  std::vector<BloomFilter> queries;
  queries.reserve(num_queries);
  size_t forward_rows = 0;  // Rows the forward direction folds per pass.
  for (size_t q = 0; q < num_queries; ++q) {
    queries.push_back(
        matrix.MakeQueryFilter(RandomValueSet(&rng, 20, 4000)));
    forward_rows += queries.back().bits().Count();
  }
  // Reverse folds the complement rows of every query.
  const size_t reverse_rows = num_queries * bloom_bits - forward_rows;
  std::printf(
      "matrix: %zu bits x %zu columns, %zu queries "
      "(%zu forward rows, %zu reverse rows per pass)\n\n",
      bloom_bits, num_columns, num_queries, forward_rows, reverse_rows);

  const std::vector<simd::Backend> backends = simd::AvailableBackends();
  TablePrinter table(
      {"backend", "direction", "batch", "total ms", "rows/s", "vs scalar"});
  obs::JsonValue report = obs::JsonValue::Object();
  report.Set("bloom_bits", obs::JsonValue(uint64_t{bloom_bits}));
  report.Set("columns", obs::JsonValue(uint64_t{num_columns}));
  report.Set("queries", obs::JsonValue(uint64_t{num_queries}));
  report.Set("detected_backend",
             obs::JsonValue(std::string(
                 simd::BackendName(simd::DetectBestBackend()))));
  obs::JsonValue backends_json = obs::JsonValue::Array();

  // cell_ms[backend][direction][batch] for the vs-scalar columns; scalar is
  // always backends.front().
  std::vector<double> scalar_cell_ms;
  std::vector<double> aggregate_ms(backends.size(), 0.0);
  size_t cell_index = 0;

  std::vector<BitVector> candidates(num_queries);
  for (size_t b = 0; b < backends.size(); ++b) {
    const simd::Backend backend = backends[b];
    if (!simd::ForceBackend(backend)) continue;
    obs::JsonValue backend_json = obs::JsonValue::Object();
    backend_json.Set("name", obs::JsonValue(std::string(
                                 simd::BackendName(backend))));
    cell_index = 0;
    for (const bool forward : {true, false}) {
      const char* direction = forward ? "forward" : "reverse";
      const size_t pass_rows = forward ? forward_rows : reverse_rows;
      obs::JsonValue dir_json = obs::JsonValue::Object();
      for (const int64_t batch : batch_sizes) {
        const auto run_pass = [&] {
          for (size_t lo = 0; lo < num_queries;
               lo += static_cast<size_t>(batch)) {
            const size_t hi =
                std::min(num_queries, lo + static_cast<size_t>(batch));
            std::vector<BloomProbe> probes;
            probes.reserve(hi - lo);
            for (size_t i = lo; i < hi; ++i) {
              probes.push_back(BloomProbe{&queries[i], &candidates[i]});
            }
            if (forward) {
              matrix.QuerySupersetsBatch(probes);
            } else {
              matrix.QuerySubsetsBatch(probes);
            }
          }
        };
        const auto reset = [&] {
          for (auto& c : candidates) c = BitVector(num_columns, true);
        };
        reset();
        run_pass();  // Warmup (also faults in the matrix pages).
        double best_ms = 0;
        for (int r = 0; r < repeats; ++r) {
          reset();
          Stopwatch sw;
          run_pass();
          const double ms = sw.ElapsedMillis();
          if (r == 0 || ms < best_ms) best_ms = ms;
        }
        const double rows_per_s =
            1000.0 * static_cast<double>(pass_rows) / best_ms;
        std::string vs_scalar = "1.00x";
        if (b == 0) {
          scalar_cell_ms.push_back(best_ms);
        } else {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.2fx",
                        scalar_cell_ms[cell_index] / best_ms);
          vs_scalar = buf;
        }
        aggregate_ms[b] += best_ms;
        ++cell_index;
        table.AddRow({std::string(simd::BackendName(backend)), direction,
                      std::to_string(batch), bench::Ms(best_ms),
                      TablePrinter::FormatDouble(rows_per_s / 1e6, 1) + "M",
                      vs_scalar});
        obs::JsonValue point = obs::JsonValue::Object();
        point.Set("batch_size", obs::JsonValue(batch));
        point.Set("total_ms", obs::JsonValue(best_ms));
        point.Set("rows_per_s", obs::JsonValue(rows_per_s));
        dir_json.Set("batch_" + std::to_string(batch), std::move(point));
      }
      backend_json.Set(direction, std::move(dir_json));
    }
    backend_json.Set("aggregate_ms", obs::JsonValue(aggregate_ms[b]));
    backend_json.Set("aggregate_speedup_vs_scalar",
                     obs::JsonValue(aggregate_ms[0] / aggregate_ms[b]));
    backends_json.Append(std::move(backend_json));
    simd::ClearForcedBackend();
  }
  report.Set("backends", std::move(backends_json));

  // Headline: scalar total vs the best vector backend's total over the whole
  // forward + reverse, batch 1 + 64 workload.
  bool gate_failed = false;
  double best_speedup = 0;
  std::string best_name;
  for (size_t b = 1; b < backends.size(); ++b) {
    const double speedup = aggregate_ms[0] / aggregate_ms[b];
    if (speedup > best_speedup) {
      best_speedup = speedup;
      best_name = std::string(simd::BackendName(backends[b]));
    }
  }
  if (!best_name.empty()) {
    char agg_str[32];
    std::snprintf(agg_str, sizeof(agg_str), "%.2fx", best_speedup);
    table.AddRow({"best=" + best_name, "aggregate", "-",
                  bench::Ms(aggregate_ms[0]) + " scalar", "-", agg_str});
    obs::JsonValue agg = obs::JsonValue::Object();
    agg.Set("best_backend", obs::JsonValue(best_name));
    agg.Set("scalar_ms", obs::JsonValue(aggregate_ms[0]));
    agg.Set("speedup", obs::JsonValue(best_speedup));
    report.Set("aggregate", std::move(agg));
    if (require_speedup > 0 && best_speedup < require_speedup) {
      std::fprintf(stderr,
                   "FAIL: best vector backend (%s) aggregate speedup %.2fx "
                   "below required %.2fx\n",
                   best_name.c_str(), best_speedup, require_speedup);
      gate_failed = true;
    }
  } else if (require_speedup > 0) {
    std::printf(
        "note: no vector backend available on this machine; "
        "--require_speedup gate skipped\n");
  }
  bench::EmitTable(flags, table, "\nSIMD kernel throughput");

  std::ofstream out(json_path, std::ios::trunc);
  if (!out.good()) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << report.Dump(2) << "\n";
  std::printf("wrote %s\n", json_path.c_str());
  return gate_failed ? 1 : 0;
}

}  // namespace
}  // namespace tind

int main(int argc, char** argv) {
  return tind::bench::RunHarness(argc, argv, tind::Run);
}
