/// Scenario grid benchmark: runs every scenario of a named grid through the
/// full pipeline — materialize corpus, build index at the spec's geometry,
/// all-pairs discovery scored against the planted ground truth, traffic
/// replay through the batch engines — and emits one JSON row per scenario
/// into BENCH_scenarios.json. This is the sweep the paper's experiment
/// sections run by hand (Figures 7–15 vary scale, relaxation, and data
/// shape); here the grid is named, seeded, and archived by CI so every perf
/// claim is evaluated across corpus shapes instead of one default point.
///
///   bench_scenarios                          # all builtin scenarios
///   bench_scenarios --scenarios=planted-clusters,adversarial-bloom
///   bench_scenarios --specs=scenarios/a.json,scenarios/b.json
///   bench_scenarios --repeats=3 --json=BENCH_scenarios.json
///   bench_scenarios --require_floors        # exit 1 on any floor breach
///
/// Exit status: 0 on success; 1 when a scenario fails to run, or (with
/// --require_floors) when any scenario breaches its precision/recall floors.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "obs/json.h"
#include "scenario/scenario.h"
#include "scenario/scenario_run.h"

namespace tind {
namespace {

int Run(const Flags& flags) {
  const std::string json_path = flags.GetString("json", "BENCH_scenarios.json");
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const bool require_floors = flags.GetBool("require_floors", false);

  // The grid: --scenarios= builtin names, --specs= spec-file paths, or (the
  // default) every builtin scenario.
  std::vector<scenario::ScenarioSpec> grid;
  const std::string names = flags.GetString("scenarios", "");
  const std::string specs = flags.GetString("specs", "");
  const auto split = [](const std::string& csv) {
    std::vector<std::string> out;
    size_t lo = 0;
    while (lo <= csv.size()) {
      const size_t hi = csv.find(',', lo);
      const std::string item =
          csv.substr(lo, hi == std::string::npos ? hi : hi - lo);
      if (!item.empty()) out.push_back(item);
      if (hi == std::string::npos) break;
      lo = hi + 1;
    }
    return out;
  };
  for (const std::string& token : split(names)) {
    auto spec = scenario::ResolveScenario(token);
    if (!spec.ok()) {
      std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
      return 1;
    }
    grid.push_back(std::move(*spec));
  }
  for (const std::string& token : split(specs)) {
    auto spec = scenario::LoadSpecFile(token);
    if (!spec.ok()) {
      std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
      return 1;
    }
    grid.push_back(std::move(*spec));
  }
  if (grid.empty()) grid = scenario::BuiltinScenarios();

  scenario::ScenarioRunOptions run_options;
  run_options.pool =
      flags.GetBool("sequential", false) ? nullptr : DefaultThreadPool();
  run_options.traffic_repeats = repeats;

  TablePrinter table({"scenario", "attrs", "planted", "precision", "recall",
                      "discover s", "traffic qps", "floors"});
  obs::JsonValue rows = obs::JsonValue::Array();
  bool any_floor_breach = false;
  for (const scenario::ScenarioSpec& spec : grid) {
    auto report = scenario::RunScenario(spec, run_options);
    if (!report.ok()) {
      std::fprintf(stderr, "scenario %s failed: %s\n", spec.name.c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    table.AddRow({report->name, std::to_string(report->num_attributes),
                  std::to_string(report->planted_pairs),
                  TablePrinter::FormatDouble(report->precision, 3),
                  TablePrinter::FormatDouble(report->recall, 3),
                  TablePrinter::FormatDouble(report->discovery_seconds, 2),
                  TablePrinter::FormatDouble(report->traffic_qps, 0),
                  report->floors_ok ? "ok" : "BREACH"});
    if (!report->floors_ok) {
      any_floor_breach = true;
      std::fprintf(stderr, "scenario %s floor breach: %s\n",
                   report->name.c_str(), report->floor_failure.c_str());
    }
    rows.Append(std::move(report->json));
  }

  obs::JsonValue root = obs::JsonValue::Object();
  root.Set("scenarios", std::move(rows));
  bench::EmitTable(flags, table, "\nScenario grid");

  std::ofstream out(json_path, std::ios::trunc);
  if (!out.good()) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << root.Dump(2) << "\n";
  std::printf("wrote %s\n", json_path.c_str());
  return (require_floors && any_floor_breach) ? 1 : 0;
}

}  // namespace
}  // namespace tind

int main(int argc, char** argv) {
  return tind::bench::RunHarness(argc, argv, tind::Run);
}
