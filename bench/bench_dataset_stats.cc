/// Dataset statistics (Section 5.1): reproduces the corpus description —
/// number of attributes after filtering, average changes per attribute
/// (paper: 13), average lifetime (paper: 5.6 years), average version
/// cardinality (paper: 28) — and exercises the full raw-revision
/// preprocessing pipeline on a sampled sub-corpus, reporting its filter
/// funnel.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "wiki/preprocess.h"

namespace tind {
namespace {

int Run(const Flags& flags) {
  auto generated = bench::BuildCorpus(flags, /*default_attributes=*/4000,
                                      /*default_days=*/5840);
  const DatasetStats stats = generated.dataset.ComputeStats();
  bench::PrintBanner(
      "Dataset statistics (Section 5.1)",
      "1.3M attributes; avg 13 changes; 5.6y lifetime; avg cardinality 28",
      generated.dataset);

  TablePrinter table({"metric", "paper", "ours"});
  table.AddRow({"attributes (after filtering)", "1,300,000",
                TablePrinter::FormatInt(static_cast<int64_t>(stats.num_attributes))});
  table.AddRow({"avg changes per attribute", "13",
                TablePrinter::FormatDouble(stats.avg_changes, 1)});
  table.AddRow({"avg lifetime (years)", "5.6",
                TablePrinter::FormatDouble(stats.avg_lifetime_years, 1)});
  table.AddRow({"avg version cardinality", "28",
                TablePrinter::FormatDouble(stats.avg_version_cardinality, 1)});
  table.AddRow({"distinct values", "-",
                TablePrinter::FormatInt(static_cast<int64_t>(stats.num_distinct_values))});
  table.AddRow({"total versions", "-",
                TablePrinter::FormatInt(static_cast<int64_t>(stats.total_versions))});
  table.AddRow({"corpus memory (MB)", "-",
                TablePrinter::FormatDouble(
                    static_cast<double>(stats.memory_bytes) / (1 << 20), 1)});
  bench::EmitTable(flags, table, "Corpus statistics");

  // Raw pipeline funnel on a smaller corpus (revision-level generation is
  // the expensive path).
  const size_t raw_attrs = static_cast<size_t>(flags.GetInt("raw_attributes", 600));
  auto raw = wiki::WikiGenerator(
                 bench::ScaledOptions(raw_attrs, flags.GetInt("days", 5840),
                                      static_cast<uint64_t>(flags.GetInt("seed", 7))))
                 .GenerateRawCorpus();
  if (!raw.ok()) {
    std::fprintf(stderr, "raw generation failed: %s\n",
                 raw.status().ToString().c_str());
    return 1;
  }
  Stopwatch timer;
  auto processed = wiki::PreprocessRawCorpus(raw->raw, wiki::PreprocessOptions());
  if (!processed.ok()) {
    std::fprintf(stderr, "preprocess failed: %s\n",
                 processed.status().ToString().c_str());
    return 1;
  }
  const wiki::PreprocessStats& p = processed->stats;
  TablePrinter funnel({"pipeline stage", "count"});
  funnel.AddRow({"raw tables", TablePrinter::FormatInt(static_cast<int64_t>(p.tables))});
  funnel.AddRow({"raw revisions", TablePrinter::FormatInt(static_cast<int64_t>(p.revisions))});
  funnel.AddRow({"matched column chains", TablePrinter::FormatInt(static_cast<int64_t>(p.column_chains))});
  funnel.AddRow({"dropped: mostly numeric", TablePrinter::FormatInt(static_cast<int64_t>(p.dropped_numeric))});
  funnel.AddRow({"dropped: <5 versions", TablePrinter::FormatInt(static_cast<int64_t>(p.dropped_few_versions))});
  funnel.AddRow({"dropped: median cardinality <5", TablePrinter::FormatInt(static_cast<int64_t>(p.dropped_small_cardinality))});
  funnel.AddRow({"dropped: empty after normalization", TablePrinter::FormatInt(static_cast<int64_t>(p.dropped_empty))});
  funnel.AddRow({"kept attributes", TablePrinter::FormatInt(static_cast<int64_t>(p.kept))});
  std::printf("raw pipeline runtime: %.2fs\n", timer.ElapsedSeconds());
  bench::EmitTable(flags, funnel,
                   "Preprocessing funnel (raw revisions -> attribute histories)");
  return 0;
}

}  // namespace
}  // namespace tind

int main(int argc, char** argv) {
  return tind::bench::RunHarness(argc, argv, tind::Run);
}
