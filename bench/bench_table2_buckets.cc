/// Table 2: genuine-IND rate (TP%) of static INDs bucketed by the number of
/// changes of their left- and right-hand sides, sampling up to 100 INDs per
/// bucket (the paper annotated 900 INDs manually; our ground truth is the
/// generator's planted inclusions). Paper shape: TP% grows with change
/// frequency on both sides — 7/10/12 | 7/12/9 | 4/14/24 — i.e. attributes
/// that keep changing and *stay* included are much more likely genuine.

#include <cstdio>
#include <set>

#include "baseline/static_ind.h"
#include "bench_util.h"
#include "common/thread_pool.h"
#include "eval/buckets.h"

namespace tind {
namespace {

int Run(const Flags& flags) {
  auto generated = bench::BuildCorpus(flags, /*default_attributes=*/3000);
  const Dataset& dataset = generated.dataset;
  bench::PrintBanner(
      "Table 2: genuine-IND rate by change-count buckets",
      "TP% rises with change counts: row-wise 7/10/12, 7/12/9, 4/14/24",
      dataset);

  StaticIndOptions opts;
  opts.bloom_bits = 4096;
  auto discovery = StaticIndDiscovery::Build(dataset, opts);
  if (!discovery.ok()) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }
  ThreadPool pool;
  const AllPairsResult static_inds = (*discovery)->AllPairs(&pool);
  std::printf("static INDs at latest snapshot: %zu\n",
              static_inds.pairs.size());

  const auto truth_ids =
      generated.ground_truth.ToIdPairs(generated.attribute_names);
  const std::set<IdPair> truth(truth_ids.begin(), truth_ids.end());
  std::vector<IdPair> pairs;
  pairs.reserve(static_inds.pairs.size());
  for (const TindPair& p : static_inds.pairs) pairs.push_back({p.lhs, p.rhs});

  const size_t sample = static_cast<size_t>(flags.GetInt("sample", 100));
  const auto cells = ComputeBucketTable(
      dataset, pairs, truth, sample,
      static_cast<uint64_t>(flags.GetInt("seed", 7)) + 99);

  // Paper's Table 2 TP percentages in row-major bucket order.
  static const char* kPaperTp[9] = {"7%",  "10%", "12%", "7%", "12%",
                                    "9%",  "4%",  "14%", "24%"};
  TablePrinter table({"bucket (lhs ⊆ rhs)", "INDs", "sampled", "genuine",
                      "TP% (ours)", "TP% (paper)"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const BucketCell& c = cells[i];
    table.AddRow({std::string(ChangeBucketToString(c.lhs)) + " in " +
                      ChangeBucketToString(c.rhs),
                  TablePrinter::FormatInt(static_cast<int64_t>(c.total)),
                  TablePrinter::FormatInt(static_cast<int64_t>(c.sampled)),
                  TablePrinter::FormatInt(static_cast<int64_t>(c.genuine)),
                  c.sampled > 0 ? TablePrinter::FormatPercent(c.TpRate(), 0)
                                : "-",
                  kPaperTp[i]});
  }
  bench::EmitTable(flags, table, "\nTable 2");

  // Aggregate precision of raw static discovery (paper: 11%).
  size_t tp = 0;
  for (const IdPair& p : pairs) tp += truth.count(p) > 0 ? 1 : 0;
  if (!pairs.empty()) {
    std::printf("overall static-IND precision: %.1f%% (paper: 11%%)\n",
                100.0 * static_cast<double>(tp) / pairs.size());
  }
  return 0;
}

}  // namespace
}  // namespace tind

int main(int argc, char** argv) {
  return tind::bench::RunHarness(argc, argv, tind::Run);
}
