/// Incremental-vs-rebuild differential: after a chain of revision deltas,
/// the index produced by IndexUpdater::ApplyDelta (clone + column patch,
/// no rebuild) must answer Search / ReverseSearch / BatchSearch /
/// BatchReverseSearch with results AND QueryStats (everything but wall
/// time) identical to a fresh TindIndex::Build over the mutated dataset —
/// across an (ε, δ, weight) grid that exercises every pruning stage, on
/// every available SIMD backend including forced scalar. Both sides route
/// the dataset mutation through ApplyDeltaToDataset, so value interning
/// order is shared by construction and any bit difference is the patcher's.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/simd.h"
#include "scenario/mutate.h"
#include "temporal/weights.h"
#include "tind/index.h"
#include "tind/update.h"
#include "wiki/generator.h"

namespace tind {
namespace {

void ExpectSameStats(const QueryStats& incremental, const QueryStats& rebuilt,
                     const std::string& context) {
  EXPECT_EQ(incremental.initial_candidates, rebuilt.initial_candidates)
      << context;
  EXPECT_EQ(incremental.after_slices, rebuilt.after_slices) << context;
  EXPECT_EQ(incremental.after_exact_check, rebuilt.after_exact_check)
      << context;
  EXPECT_EQ(incremental.num_results, rebuilt.num_results) << context;
  EXPECT_EQ(incremental.validations, rebuilt.validations) << context;
  EXPECT_EQ(incremental.used_slices, rebuilt.used_slices) << context;
  EXPECT_EQ(incremental.used_prefilter, rebuilt.used_prefilter) << context;
}

struct GridPoint {
  double epsilon;
  int64_t delta;
  bool decay_weight;
};

// Strict; the build operating point; beyond build ε/δ (slices + M_R are
// skipped — the skip decision itself must survive patching).
constexpr GridPoint kGrid[] = {
    {0.0, 0, false},
    {3.0, 5, false},
    {6.0, 9, true},
};

constexpr size_t kChainedDeltas = 3;

class UpdateDifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void TearDown() override { simd::ClearForcedBackend(); }
};

TEST_P(UpdateDifferentialTest, IncrementalIndexIsBitIdentical) {
  const uint64_t seed = GetParam();
  wiki::GeneratorOptions gen;
  gen.seed = seed;
  gen.num_days = 130;
  gen.num_families = 3;
  gen.num_noise_attributes = 14;
  gen.num_drifter_attributes = 6;
  gen.num_catchall_attributes = 2;
  gen.shared_vocabulary = 100;
  gen.entities_per_family_pool = 60;
  auto corpus = wiki::WikiGenerator(gen).GenerateDataset();
  ASSERT_TRUE(corpus.ok());
  const Dataset& base_dataset = corpus->dataset;
  const int64_t n_days = base_dataset.domain().num_timestamps();
  const ConstantWeight const_w(n_days);
  const ExponentialDecayWeight decay_w(n_days, 0.98);

  TindIndexOptions opts;
  opts.bloom_bits = 512;
  opts.num_hashes = 2;
  opts.num_slices = 5;
  opts.delta = 5;
  opts.epsilon = 3.0;
  opts.build_reverse_index = true;
  opts.reverse_slices = 2;
  opts.weight = &const_w;
  opts.seed = seed * 13 + 1;
  auto built_base = TindIndex::Build(base_dataset, opts);
  ASSERT_TRUE(built_base.ok()) << built_base.status().ToString();

  // Chain deltas down both paths: incremental (clone + patch each step) and
  // the dataset-only oracle chain that a fresh Build runs over at the end.
  scenario::MutationSpec spec;
  spec.num_ops = 24;
  UpdateResult incremental;
  std::shared_ptr<Dataset> oracle_dataset;
  for (size_t step = 0; step < kChainedDeltas; ++step) {
    const Dataset& at =
        step == 0 ? base_dataset : *oracle_dataset;
    const RevisionDelta delta =
        scenario::MutateCorpus(at, seed * 100 + step, spec);
    ASSERT_FALSE(delta.empty());

    auto applied = ApplyDeltaToDataset(at, delta);
    ASSERT_TRUE(applied.ok()) << "step " << step << ": "
                              << applied.status().ToString();
    oracle_dataset = applied->dataset;

    auto updated = step == 0
                       ? IndexUpdater::ApplyDelta(**built_base, delta)
                       : IndexUpdater::ApplyDelta(incremental, delta);
    ASSERT_TRUE(updated.ok()) << "step " << step << ": "
                              << updated.status().ToString();
    incremental = *updated;

    // The patcher must have worked incrementally, not degenerated into a
    // hidden rebuild: under the default kRandom placement every interval is
    // stable, so no slice may be rebuilt and clean slices must be skipped.
    EXPECT_EQ(incremental.stats.slices_rebuilt, 0u) << "step " << step;
    EXPECT_FALSE(incremental.stats.slice_intervals_changed)
        << "step " << step;
  }

  // Both chains must have produced the same corpus (same interning order).
  ASSERT_EQ(incremental.dataset->size(), oracle_dataset->size());
  ASSERT_EQ(incremental.dataset->dictionary().size(),
            oracle_dataset->dictionary().size());
  ASSERT_GT(incremental.dataset->size(), base_dataset.size())
      << "the delta chain never added an attribute; weak test";

  auto rebuilt = TindIndex::Build(*oracle_dataset, opts);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();

  // Each index is queried with attributes from ITS OWN dataset object:
  // Search's reflexive-tIND exclusion matches queries by pointer identity,
  // and the two (content-identical) chains own distinct Dataset copies.
  const TindIndex& inc = *incremental.index;
  const Dataset& inc_dataset = *incremental.dataset;
  const Dataset& dataset = *oracle_dataset;
  const size_t n_attrs = dataset.size();
  std::vector<const AttributeHistory*> batch, inc_batch;
  for (size_t q = 0; q < n_attrs; ++q) {
    batch.push_back(&dataset.attribute(static_cast<AttributeId>(q)));
    inc_batch.push_back(&inc_dataset.attribute(static_cast<AttributeId>(q)));
  }

  for (const simd::Backend backend : simd::AvailableBackends()) {
    ASSERT_TRUE(simd::ForceBackend(backend));
    const std::string backend_name(simd::BackendName(backend));
    for (const GridPoint& point : kGrid) {
      const WeightFunction* w =
          point.decay_weight ? static_cast<const WeightFunction*>(&decay_w)
                             : &const_w;
      const TindParams params{point.epsilon, point.delta, w};
      const std::string grid_ctx = backend_name + " eps=" +
                                   std::to_string(point.epsilon) +
                                   " delta=" + std::to_string(point.delta);

      for (size_t q = 0; q < n_attrs; ++q) {
        const AttributeHistory& query =
            dataset.attribute(static_cast<AttributeId>(q));
        const AttributeHistory& inc_query =
            inc_dataset.attribute(static_cast<AttributeId>(q));
        const std::string ctx = grid_ctx + " q=" + std::to_string(q);
        QueryStats is, rs;
        EXPECT_EQ(inc.Search(inc_query, params, &is),
                  (*rebuilt)->Search(query, params, &rs))
            << "forward " << ctx;
        ExpectSameStats(is, rs, "forward " + ctx);
        QueryStats irs, rrs;
        EXPECT_EQ(inc.ReverseSearch(inc_query, params, &irs),
                  (*rebuilt)->ReverseSearch(query, params, &rrs))
            << "reverse " << ctx;
        ExpectSameStats(irs, rrs, "reverse " + ctx);
      }

      std::vector<QueryStats> inc_stats, rebuilt_stats;
      EXPECT_EQ(inc.BatchSearch(inc_batch, params, &inc_stats),
                (*rebuilt)->BatchSearch(batch, params, &rebuilt_stats))
          << "batch forward " << grid_ctx;
      ASSERT_EQ(inc_stats.size(), rebuilt_stats.size());
      for (size_t q = 0; q < rebuilt_stats.size(); ++q) {
        ExpectSameStats(inc_stats[q], rebuilt_stats[q],
                        "batch forward " + grid_ctx + " q=" +
                            std::to_string(q));
      }
      EXPECT_EQ(inc.BatchReverseSearch(inc_batch, params, &inc_stats),
                (*rebuilt)->BatchReverseSearch(batch, params, &rebuilt_stats))
          << "batch reverse " << grid_ctx;
      ASSERT_EQ(inc_stats.size(), rebuilt_stats.size());
      for (size_t q = 0; q < rebuilt_stats.size(); ++q) {
        ExpectSameStats(inc_stats[q], rebuilt_stats[q],
                        "batch reverse " + grid_ctx + " q=" +
                            std::to_string(q));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateDifferentialTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace tind
