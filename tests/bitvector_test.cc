#include "common/bitvector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tind {
namespace {

TEST(BitVectorTest, EmptyVector) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.None());
  EXPECT_EQ(v.Count(), 0u);
}

TEST(BitVectorTest, ConstructZeroFilled) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_TRUE(v.None());
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(v.Get(i));
}

TEST(BitVectorTest, ConstructOneFilled) {
  BitVector v(130, true);
  EXPECT_EQ(v.Count(), 130u);
  EXPECT_TRUE(v.All());
  for (size_t i = 0; i < 130; ++i) EXPECT_TRUE(v.Get(i));
}

TEST(BitVectorTest, OneFilledTailIsMasked) {
  // 130 = 2*64 + 2: the last live word has 62 tail bits that must stay zero,
  // and the alignment padding words beyond it must be all-zero too.
  BitVector v(130, true);
  EXPECT_EQ(v.num_words(), 3u);
  EXPECT_EQ(v.words()[2], 0x3ULL);
  EXPECT_TRUE(v.PaddingIsZero());
}

TEST(BitVectorTest, SetGetClear) {
  BitVector v(100);
  v.Set(0);
  v.Set(63);
  v.Set(64);
  v.Set(99);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(63));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(99));
  EXPECT_FALSE(v.Get(1));
  EXPECT_EQ(v.Count(), 4u);
  v.Clear(63);
  EXPECT_FALSE(v.Get(63));
  EXPECT_EQ(v.Count(), 3u);
}

TEST(BitVectorTest, Assign) {
  BitVector v(10);
  v.Assign(3, true);
  EXPECT_TRUE(v.Get(3));
  v.Assign(3, false);
  EXPECT_FALSE(v.Get(3));
}

TEST(BitVectorTest, SetAllClearAll) {
  BitVector v(70);
  v.SetAll();
  EXPECT_TRUE(v.All());
  v.ClearAll();
  EXPECT_TRUE(v.None());
}

TEST(BitVectorTest, AndOperation) {
  BitVector a(128), b(128);
  a.Set(1);
  a.Set(70);
  a.Set(100);
  b.Set(70);
  b.Set(100);
  b.Set(127);
  a.And(b);
  EXPECT_FALSE(a.Get(1));
  EXPECT_TRUE(a.Get(70));
  EXPECT_TRUE(a.Get(100));
  EXPECT_FALSE(a.Get(127));
}

TEST(BitVectorTest, AndNotOperation) {
  BitVector a(128), b(128);
  a.Set(1);
  a.Set(70);
  b.Set(70);
  a.AndNot(b);
  EXPECT_TRUE(a.Get(1));
  EXPECT_FALSE(a.Get(70));
}

TEST(BitVectorTest, OrXorOperations) {
  BitVector a(64), b(64);
  a.Set(1);
  b.Set(2);
  b.Set(1);
  BitVector o = a;
  o.Or(b);
  EXPECT_EQ(o.Count(), 2u);
  BitVector x = a;
  x.Xor(b);
  EXPECT_FALSE(x.Get(1));
  EXPECT_TRUE(x.Get(2));
}

TEST(BitVectorTest, FlipMasksTail) {
  BitVector v(66);
  v.Set(0);
  v.Flip();
  EXPECT_FALSE(v.Get(0));
  EXPECT_EQ(v.Count(), 65u);
  v.Flip();
  EXPECT_EQ(v.Count(), 1u);
  EXPECT_TRUE(v.Get(0));
}

TEST(BitVectorTest, IsSubsetOf) {
  BitVector a(200), b(200);
  a.Set(5);
  a.Set(150);
  b.Set(5);
  b.Set(150);
  b.Set(199);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  BitVector empty(200);
  EXPECT_TRUE(empty.IsSubsetOf(a));
}

TEST(BitVectorTest, Intersects) {
  BitVector a(100), b(100);
  a.Set(10);
  b.Set(20);
  EXPECT_FALSE(a.Intersects(b));
  b.Set(10);
  EXPECT_TRUE(a.Intersects(b));
}

TEST(BitVectorTest, FindNextSet) {
  BitVector v(300);
  v.Set(5);
  v.Set(64);
  v.Set(255);
  EXPECT_EQ(v.FindNextSet(0), 5u);
  EXPECT_EQ(v.FindNextSet(5), 5u);
  EXPECT_EQ(v.FindNextSet(6), 64u);
  EXPECT_EQ(v.FindNextSet(65), 255u);
  EXPECT_EQ(v.FindNextSet(256), 300u);
  EXPECT_EQ(v.FindNextSet(400), 300u);
}

TEST(BitVectorTest, ForEachSetVisitsAscending) {
  BitVector v(500);
  const std::vector<size_t> expected = {0, 63, 64, 65, 128, 499};
  for (const size_t i : expected) v.Set(i);
  std::vector<size_t> seen;
  v.ForEachSet([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(BitVectorTest, ToIndexVector) {
  BitVector v(10);
  v.Set(2);
  v.Set(7);
  EXPECT_EQ(v.ToIndexVector(), (std::vector<size_t>{2, 7}));
}

TEST(BitVectorTest, EqualityAndToString) {
  BitVector a(4), b(4);
  a.Set(1);
  EXPECT_FALSE(a == b);
  b.Set(1);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.ToString(), "0100");
}

TEST(BitVectorTest, MemoryUsage) {
  // Storage is padded to whole 64-byte groups for the SIMD kernels: anything
  // up to 512 bits occupies one group, 513 bits spills into a second.
  BitVector v(128);
  EXPECT_EQ(v.MemoryUsageBytes(), 64u);
  BitVector w(513);
  EXPECT_EQ(w.MemoryUsageBytes(), 128u);
}

/// Property check against a reference boolean vector under random ops.
TEST(BitVectorPropertyTest, MatchesReferenceImplementation) {
  Rng rng(99);
  const size_t n = 257;
  BitVector v(n);
  std::vector<bool> ref(n, false);
  for (int step = 0; step < 2000; ++step) {
    const size_t i = rng.Uniform(n);
    switch (rng.Uniform(3)) {
      case 0:
        v.Set(i);
        ref[i] = true;
        break;
      case 1:
        v.Clear(i);
        ref[i] = false;
        break;
      case 2:
        ASSERT_EQ(v.Get(i), ref[i]) << "at step " << step;
        break;
    }
  }
  size_t ref_count = 0;
  for (const bool b : ref) ref_count += b ? 1 : 0;
  EXPECT_EQ(v.Count(), ref_count);
}

TEST(BitVectorBorrowTest, BorrowedViewReadsExternalWords) {
  // Borrow an owned vector's storage: same aligned layout the snapshot
  // loader sees over mmap'd planes.
  BitVector owned(130);
  owned.Set(0);
  owned.Set(64);
  owned.Set(129);
  const BitVector view = BitVector::Borrow(owned.size(), owned.words().data());
  EXPECT_TRUE(view.borrowed());
  EXPECT_FALSE(owned.borrowed());
  EXPECT_EQ(view.size(), owned.size());
  EXPECT_EQ(view.padded_words(), owned.padded_words());
  EXPECT_TRUE(view.Get(0));
  EXPECT_TRUE(view.Get(64));
  EXPECT_TRUE(view.Get(129));
  EXPECT_FALSE(view.Get(1));
  EXPECT_EQ(view.Count(), 3u);
  EXPECT_EQ(view.ToIndexVector(), owned.ToIndexVector());
  EXPECT_TRUE(view.PaddingIsZero());
  // Equality is content-based, not storage-based.
  EXPECT_EQ(view, owned);
  // The view tracks writes through the owner (it aliases, not copies).
  owned.Set(1);
  EXPECT_TRUE(view.Get(1));
}

TEST(BitVectorBorrowTest, BorrowedViewWorksAsBinaryOperand) {
  BitVector a(200), b(200);
  for (size_t i = 0; i < 200; i += 3) a.Set(i);
  for (size_t i = 0; i < 200; i += 5) b.Set(i);
  const BitVector view = BitVector::Borrow(b.size(), b.words().data());

  BitVector anded = a;
  anded.And(view);
  BitVector expected = a;
  expected.And(b);
  EXPECT_EQ(anded, expected);
  EXPECT_TRUE(view.IsSubsetOf(BitVector(200, true)));
  EXPECT_TRUE(view.Intersects(a));  // Both contain 0.
}

TEST(BitVectorBorrowTest, CopyOfBorrowedViewStillBorrows) {
  BitVector owned(77, true);
  const BitVector view = BitVector::Borrow(owned.size(), owned.words().data());
  const BitVector copy = view;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(copy.borrowed());
  EXPECT_EQ(copy.Count(), 77u);
  EXPECT_EQ(copy.words().data(), owned.words().data());
}

TEST(BitVectorPropertyTest, DeMorganHolds) {
  Rng rng(123);
  const size_t n = 190;
  BitVector a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.5)) a.Set(i);
    if (rng.Bernoulli(0.5)) b.Set(i);
  }
  // ~(a | b) == ~a & ~b
  BitVector lhs = a;
  lhs.Or(b);
  lhs.Flip();
  BitVector rhs = a;
  rhs.Flip();
  BitVector nb = b;
  nb.Flip();
  rhs.And(nb);
  EXPECT_EQ(lhs, rhs);
}

}  // namespace
}  // namespace tind
