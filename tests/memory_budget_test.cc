#include "common/memory_budget.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <thread>
#include <vector>

namespace tind {
namespace {

TEST(MemoryBudgetTest, UnlimitedByDefault) {
  MemoryBudget budget;
  EXPECT_TRUE(budget.Allocate(std::numeric_limits<size_t>::max()).ok());
  EXPECT_EQ(budget.capacity(), 0u);
}

TEST(MemoryBudgetTest, AllocateWithinCapacity) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.Allocate(60).ok());
  EXPECT_TRUE(budget.Allocate(40).ok());
  EXPECT_EQ(budget.used(), 100u);
  EXPECT_FALSE(budget.Allocate(1).ok());
}

TEST(MemoryBudgetTest, RejectionIsOutOfMemoryAndLeavesUsageIntact) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.Allocate(90).ok());
  const Status rejected = budget.Allocate(20);
  EXPECT_TRUE(rejected.IsOutOfMemory());
  EXPECT_EQ(budget.used(), 90u);
}

TEST(MemoryBudgetTest, FreeReturnsBytes) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.Allocate(100).ok());
  budget.Free(50);
  EXPECT_TRUE(budget.Allocate(50).ok());
  EXPECT_EQ(budget.used(), 100u);
}

TEST(MemoryBudgetTest, HugeRequestCannotWrapAroundTheCap) {
  // Regression: `used + bytes` used to be computed directly, so a request
  // near SIZE_MAX wrapped around and slipped past the capacity check.
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.Allocate(50).ok());
  const Status huge = budget.Allocate(std::numeric_limits<size_t>::max() - 10);
  EXPECT_TRUE(huge.IsOutOfMemory());
  EXPECT_EQ(budget.used(), 50u);
}

TEST(MemoryBudgetTest, ConcurrentAllocationsNeverExceedCapacity) {
  MemoryBudget budget(1000);
  std::vector<std::thread> threads;
  std::atomic<size_t> granted{0};
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (budget.Allocate(1).ok()) granted.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(granted.load(), 1000u);
  EXPECT_EQ(budget.used(), 1000u);
}

TEST(MemoryReservationTest, ReleasesOnDestruction) {
  MemoryBudget budget(100);
  {
    MemoryReservation reservation(&budget);
    ASSERT_TRUE(reservation.Reserve(30).ok());
    ASSERT_TRUE(reservation.Reserve(20).ok());
    EXPECT_EQ(reservation.bytes(), 50u);
    EXPECT_EQ(budget.used(), 50u);
  }
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryReservationTest, FailedReserveDoesNotAccumulate) {
  MemoryBudget budget(40);
  MemoryReservation reservation(&budget);
  ASSERT_TRUE(reservation.Reserve(30).ok());
  EXPECT_FALSE(reservation.Reserve(30).ok());
  EXPECT_EQ(reservation.bytes(), 30u);
  EXPECT_EQ(budget.used(), 30u);
}

TEST(MemoryReservationTest, MoveTransfersOwnership) {
  MemoryBudget budget(100);
  MemoryReservation first(&budget);
  ASSERT_TRUE(first.Reserve(40).ok());
  MemoryReservation second = std::move(first);
  EXPECT_EQ(second.bytes(), 40u);
  EXPECT_EQ(first.bytes(), 0u);  // NOLINT(bugprone-use-after-move)
  first.Release();               // Must be a no-op, not a double free.
  EXPECT_EQ(budget.used(), 40u);
  second.Release();
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryReservationTest, NullBudgetIsNoOp) {
  MemoryReservation reservation;
  EXPECT_TRUE(reservation.Reserve(1 << 30).ok());
  reservation.Release();
}

}  // namespace
}  // namespace tind
