#include "common/memory_budget.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <thread>
#include <vector>

namespace tind {
namespace {

TEST(MemoryBudgetTest, UnlimitedByDefault) {
  MemoryBudget budget;
  EXPECT_TRUE(budget.Allocate(std::numeric_limits<size_t>::max()).ok());
  EXPECT_EQ(budget.capacity(), 0u);
}

TEST(MemoryBudgetTest, AllocateWithinCapacity) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.Allocate(60).ok());
  EXPECT_TRUE(budget.Allocate(40).ok());
  EXPECT_EQ(budget.used(), 100u);
  EXPECT_FALSE(budget.Allocate(1).ok());
}

TEST(MemoryBudgetTest, RejectionIsOutOfMemoryAndLeavesUsageIntact) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.Allocate(90).ok());
  const Status rejected = budget.Allocate(20);
  EXPECT_TRUE(rejected.IsOutOfMemory());
  EXPECT_EQ(budget.used(), 90u);
}

TEST(MemoryBudgetTest, FreeReturnsBytes) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.Allocate(100).ok());
  budget.Free(50);
  EXPECT_TRUE(budget.Allocate(50).ok());
  EXPECT_EQ(budget.used(), 100u);
}

TEST(MemoryBudgetTest, HugeRequestCannotWrapAroundTheCap) {
  // Regression: `used + bytes` used to be computed directly, so a request
  // near SIZE_MAX wrapped around and slipped past the capacity check.
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.Allocate(50).ok());
  const Status huge = budget.Allocate(std::numeric_limits<size_t>::max() - 10);
  EXPECT_TRUE(huge.IsOutOfMemory());
  EXPECT_EQ(budget.used(), 50u);
}

TEST(MemoryBudgetTest, ConcurrentAllocationsNeverExceedCapacity) {
  MemoryBudget budget(1000);
  std::vector<std::thread> threads;
  std::atomic<size_t> granted{0};
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (budget.Allocate(1).ok()) granted.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(granted.load(), 1000u);
  EXPECT_EQ(budget.used(), 1000u);
}

TEST(MemoryBudgetTest, RejectionCountIsExact) {
  MemoryBudget budget(100);
  EXPECT_EQ(budget.rejections(), 0u);
  ASSERT_TRUE(budget.Allocate(100).ok());
  EXPECT_FALSE(budget.Allocate(1).ok());
  EXPECT_FALSE(budget.Allocate(50).ok());
  EXPECT_EQ(budget.rejections(), 2u);
  budget.Free(100);
  EXPECT_TRUE(budget.Allocate(1).ok());
  EXPECT_EQ(budget.rejections(), 2u);
}

TEST(MemoryBudgetTest, StressReserveReleaseAroundTheLimit) {
  // N threads race CAS reserve/release right at the cap. Invariants checked:
  //  - used() never exceeds capacity at any observation point,
  //  - every attempt is accounted as exactly one success or one rejection,
  //  - the budget drains back to zero when all threads are done.
  const size_t kCapacity = 64;
  const int kThreads = 8;
  const int kItersPerThread = 20000;
  MemoryBudget budget(kCapacity);
  std::atomic<size_t> successes{0};
  std::atomic<bool> over_cap_seen{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Mixed request sizes so threads contend for the same last few bytes.
      const size_t sizes[] = {1, 3, 16, static_cast<size_t>(t % 4) + 1};
      for (int i = 0; i < kItersPerThread; ++i) {
        const size_t bytes = sizes[i % 4];
        if (budget.Allocate(bytes).ok()) {
          successes.fetch_add(1, std::memory_order_relaxed);
          if (budget.used() > kCapacity) over_cap_seen.store(true);
          budget.Free(bytes);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(over_cap_seen.load());
  EXPECT_EQ(budget.used(), 0u);
  const uint64_t attempts =
      static_cast<uint64_t>(kThreads) * static_cast<uint64_t>(kItersPerThread);
  EXPECT_EQ(successes.load() + budget.rejections(), attempts);
}

TEST(MemoryBudgetTest, StressHeldReservationsForceExactRejections) {
  // Threads hold reservations (via RAII) while others are racing, so
  // rejections genuinely occur, and counts must still balance exactly.
  const size_t kCapacity = 100;
  const int kThreads = 8;
  const int kItersPerThread = 5000;
  MemoryBudget budget(kCapacity);
  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> successes{0};
  // Start barrier: without it, a thread can burn through all its iterations
  // before the next thread is even spawned, and no contention ever happens.
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kItersPerThread; ++i) {
        MemoryReservation reservation(&budget);
        attempts.fetch_add(1, std::memory_order_relaxed);
        if (reservation.Reserve(48).ok()) {
          successes.fetch_add(1, std::memory_order_relaxed);
          // Hand the CPU to a rival while the reservation is held, so
          // overlapping holders occur even on a single-core machine.
          std::this_thread::yield();
          // Widen the hold window: grab a second slice while others race.
          attempts.fetch_add(1, std::memory_order_relaxed);
          if (reservation.Reserve(16).ok()) {
            successes.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  while (ready.load() < kThreads) {
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(budget.used(), 0u);
  // With capacity 100 and threads holding 48+16 bytes, any two overlapping
  // holders push past the cap: rejections occur and must balance exactly.
  EXPECT_GT(budget.rejections(), 0u);
  EXPECT_EQ(successes.load() + budget.rejections(), attempts.load());
}

TEST(MemoryReservationTest, ReleasesOnDestruction) {
  MemoryBudget budget(100);
  {
    MemoryReservation reservation(&budget);
    ASSERT_TRUE(reservation.Reserve(30).ok());
    ASSERT_TRUE(reservation.Reserve(20).ok());
    EXPECT_EQ(reservation.bytes(), 50u);
    EXPECT_EQ(budget.used(), 50u);
  }
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryReservationTest, FailedReserveDoesNotAccumulate) {
  MemoryBudget budget(40);
  MemoryReservation reservation(&budget);
  ASSERT_TRUE(reservation.Reserve(30).ok());
  EXPECT_FALSE(reservation.Reserve(30).ok());
  EXPECT_EQ(reservation.bytes(), 30u);
  EXPECT_EQ(budget.used(), 30u);
}

TEST(MemoryReservationTest, MoveTransfersOwnership) {
  MemoryBudget budget(100);
  MemoryReservation first(&budget);
  ASSERT_TRUE(first.Reserve(40).ok());
  MemoryReservation second = std::move(first);
  EXPECT_EQ(second.bytes(), 40u);
  EXPECT_EQ(first.bytes(), 0u);  // NOLINT(bugprone-use-after-move)
  first.Release();               // Must be a no-op, not a double free.
  EXPECT_EQ(budget.used(), 40u);
  second.Release();
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryReservationTest, NullBudgetIsNoOp) {
  MemoryReservation reservation;
  EXPECT_TRUE(reservation.Reserve(1 << 30).ok());
  reservation.Release();
}

}  // namespace
}  // namespace tind
