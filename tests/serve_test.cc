#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "scenario/mutate.h"
#include "serve/client.h"
#include "serve/load.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "temporal/weights.h"
#include "tind/discovery.h"
#include "tind/index.h"
#include "tind/progressive.h"
#include "tind/update.h"
#include "wiki/generator.h"

/// \file serve_test.cc
/// End-to-end contracts of the tIND query service: served answers are
/// bit-identical to direct TindIndex calls; overload is shed with typed
/// errors; consenting requests degrade to flagged supersets under
/// watermark pressure; queue-expired deadlines surface as DeadlineExceeded;
/// the client's retry/backoff machinery converges; and Shutdown() drains
/// in-flight work before tearing down.

namespace tind::serve {
namespace {

#if defined(__unix__) || defined(__APPLE__)

/// Deadline-based wait for an asynchronous server-side condition. A fixed
/// spin count flakes under scheduler jitter; a wall-clock deadline does not.
bool WaitUntil(const std::function<bool()>& ready,
               std::chrono::milliseconds deadline =
                   std::chrono::milliseconds(10000)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (!ready()) {
    if (std::chrono::steady_clock::now() >= until) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wiki::GeneratorOptions gen;
    gen.seed = 31;
    gen.num_days = 120;
    gen.num_families = 3;
    gen.num_noise_attributes = 14;
    gen.num_drifter_attributes = 6;
    gen.num_catchall_attributes = 2;
    gen.shared_vocabulary = 100;
    gen.entities_per_family_pool = 60;
    auto generated = wiki::WikiGenerator(gen).GenerateDataset();
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    corpus_ = std::make_unique<wiki::GeneratedDataset>(std::move(*generated));
    weight_ = std::make_unique<ConstantWeight>(
        corpus_->dataset.domain().num_timestamps());
    auto built = TindIndex::Build(corpus_->dataset, BuildOptions());
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    index_ = std::move(*built);
  }

  TindIndexOptions BuildOptions() const {
    TindIndexOptions opts;
    opts.bloom_bits = 512;
    opts.num_hashes = 2;
    opts.num_slices = 4;
    opts.delta = 7;
    opts.epsilon = 3.0;
    opts.build_reverse_index = true;
    opts.reverse_slices = 2;
    opts.weight = weight_.get();
    return opts;
  }

  TindParams Params() const { return TindParams{3.0, 7, weight_.get()}; }

  std::unique_ptr<TindServer> StartServer(ServerOptions options) {
    auto server =
        std::make_unique<TindServer>(*index_, Params(), options);
    const Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return server;
  }

  ClientOptions ClientFor(const TindServer& server) const {
    ClientOptions options;
    options.port = server.port();
    options.epsilon = 3.0;
    options.delta = 7;
    options.max_attempts = 1;
    return options;
  }

  std::unique_ptr<wiki::GeneratedDataset> corpus_;
  std::unique_ptr<ConstantWeight> weight_;
  std::unique_ptr<TindIndex> index_;
};

TEST_F(ServeTest, ServedAnswersMatchDirectIndexCalls) {
  auto server = StartServer(ServerOptions{});
  TindClient client(ClientFor(*server));
  ASSERT_TRUE(client.Ping().ok());
  const size_t n = corpus_->dataset.size();
  const TindParams params = Params();
  for (size_t q = 0; q < n; ++q) {
    const AttributeId attr = static_cast<AttributeId>(q);
    const auto& history = corpus_->dataset.attribute(attr);
    auto reply = client.Search(attr);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_FALSE(reply->degraded);
    EXPECT_EQ(reply->ids, index_->Search(history, params)) << "q=" << q;
    auto reverse = client.ReverseSearch(attr);
    ASSERT_TRUE(reverse.ok()) << reverse.status().ToString();
    EXPECT_EQ(reverse->ids, index_->ReverseSearch(history, params))
        << "q=" << q;
  }
  server->Shutdown();
  const auto counters = server->counters();
  EXPECT_EQ(counters.completed, 2 * n);
  EXPECT_EQ(counters.shed, 0u);
  EXPECT_EQ(counters.protocol_errors, 0u);
}

TEST_F(ServeTest, DiscoveryWindowMatchesAllPairsDiscovery) {
  auto server = StartServer(ServerOptions{});
  TindClient client(ClientFor(*server));
  const size_t n = corpus_->dataset.size();
  const AllPairsResult all = DiscoverAllTinds(*index_, Params());
  std::vector<TindPair> served;
  // Cover [0, n) in a few windows; concatenation must equal the full
  // discovery pair set (both are (lhs, rhs)-sorted).
  const AttributeId step = 7;
  for (AttributeId lo = 0; lo < n; lo += step) {
    const AttributeId hi =
        std::min<AttributeId>(static_cast<AttributeId>(n), lo + step);
    auto reply = client.DiscoveryWindow(lo, hi);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    served.insert(served.end(), reply->pairs.begin(), reply->pairs.end());
  }
  EXPECT_EQ(served, all.pairs);
}

TEST_F(ServeTest, InvalidRequestsAreTypedAndNotRetried) {
  auto server = StartServer(ServerOptions{});
  TindClient client(ClientFor(*server));
  const auto bad_attr = client.Search(
      static_cast<AttributeId>(corpus_->dataset.size() + 10));
  EXPECT_TRUE(bad_attr.status().IsInvalidArgument())
      << bad_attr.status().ToString();
  const auto bad_window = client.DiscoveryWindow(5, 5);
  EXPECT_TRUE(bad_window.status().IsInvalidArgument());
  const auto huge_window = client.DiscoveryWindow(
      0, static_cast<AttributeId>(kMaxDiscoveryWindow + 2));
  EXPECT_TRUE(huge_window.status().IsInvalidArgument());
  EXPECT_EQ(client.counters().retries, 0u);
}

TEST_F(ServeTest, FullQueueShedsWithTypedOverloadAndClientRetries) {
  ServerOptions options;
  options.max_inflight = 0;  // Every request is over the bound.
  auto server = StartServer(options);
  ClientOptions client_options = ClientFor(*server);
  client_options.max_attempts = 3;
  client_options.backoff.initial_us = 100;
  client_options.backoff.max_us = 1000;
  TindClient client(client_options);
  const auto reply = client.Search(0);
  ASSERT_TRUE(reply.status().IsResourceExhausted())
      << reply.status().ToString();
  EXPECT_NE(reply.status().message().find("overloaded"), std::string::npos);
  EXPECT_EQ(client.counters().retries, 2u);  // All attempts were shed.
  EXPECT_GE(server->counters().shed, 3u);
}

TEST_F(ServeTest, MemoryBudgetShedsAsOutOfMemory) {
  MemoryBudget budget(64);  // Far below one request's admission cost.
  ServerOptions options;
  options.memory = &budget;
  auto server = StartServer(options);
  TindClient client(ClientFor(*server));
  const auto reply = client.Search(0);
  ASSERT_TRUE(reply.status().IsOutOfMemory()) << reply.status().ToString();
  EXPECT_EQ(server->counters().shed, 1u);
  EXPECT_EQ(budget.used(), 0u);  // Reservation released on rejection.
}

TEST_F(ServeTest, WatermarkDegradesConsentingRequestsToSupersets) {
  ServerOptions options;
  options.degrade_watermark = 0;  // Every dispatch window is "overloaded".
  auto server = StartServer(options);
  ClientOptions degraded_options = ClientFor(*server);
  degraded_options.allow_degraded = true;
  TindClient degraded_client(degraded_options);
  TindClient strict_client(ClientFor(*server));
  const TindParams params = Params();
  for (AttributeId attr = 0;
       attr < std::min<size_t>(corpus_->dataset.size(), 8); ++attr) {
    const auto exact = index_->Search(corpus_->dataset.attribute(attr), params);
    auto soft = degraded_client.Search(attr);
    ASSERT_TRUE(soft.ok()) << soft.status().ToString();
    EXPECT_TRUE(soft->degraded);
    // Sound superset: every exact answer is present.
    const std::set<AttributeId> ids(soft->ids.begin(), soft->ids.end());
    for (const AttributeId id : exact) EXPECT_TRUE(ids.count(id)) << id;
    // A client that did not consent still gets the exact answer.
    auto hard = strict_client.Search(attr);
    ASSERT_TRUE(hard.ok());
    EXPECT_FALSE(hard->degraded);
    EXPECT_EQ(hard->ids, exact);
  }
  EXPECT_GT(server->counters().degraded, 0u);
}

TEST_F(ServeTest, QueueExpiredDeadlineIsDeadlineExceeded) {
  ServerOptions options;
  options.batch_linger_us = 0;
  auto server = StartServer(options);
  ClientOptions client_options = ClientFor(*server);
  client_options.deadline_ms = 1;
  TindClient client(client_options);
  // Saturate the single batcher with a wide discovery window so a trailing
  // 1 ms request expires in the queue behind it. Raw frames: the client
  // API would wait for each response in turn.
  auto fd = ConnectTcp("127.0.0.1", server->port(), 1000);
  ASSERT_TRUE(fd.ok());
  SearchRequest wide;
  wide.attribute = 0;
  wide.window_end = static_cast<AttributeId>(
      std::min<size_t>(corpus_->dataset.size(), kMaxDiscoveryWindow));
  wide.epsilon = 3.0;
  wide.delta = 7;
  for (uint64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(SendFrame(*fd, MessageType::kDiscoveryWindow, id,
                          EncodeSearchRequest(wide), 1000)
                    .ok());
  }
  const auto reply = client.Search(0);
  // Depending on scheduling the tiny-deadline request may still complete;
  // accept either a typed deadline error or a successful answer, but it
  // must never hang (the test itself is the hang detector).
  if (!reply.ok()) {
    EXPECT_TRUE(reply.status().IsDeadlineExceeded())
        << reply.status().ToString();
  }
  // Drain the raw connection: all four wide requests must terminate.
  size_t terminal = 0;
  while (terminal < 4) {
    auto frame = RecvFrame(*fd, 5000, 5000);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_TRUE(frame->header.type == MessageType::kDiscoveryResult ||
                frame->header.type == MessageType::kError);
    ++terminal;
  }
  CloseFd(*fd);
}

TEST_F(ServeTest, MalformedFramesGetTypedErrorsAndServerSurvives) {
  auto server = StartServer(ServerOptions{});
  // Garbage bytes: the server answers with an InvalidArgument error frame
  // and drops the connection.
  auto fd = ConnectTcp("127.0.0.1", server->port(), 1000);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(SendAll(*fd, "this is not a frame, not even close....", 1000)
                  .ok());
  auto error_frame = RecvFrame(*fd, 2000, 2000);
  ASSERT_TRUE(error_frame.ok()) << error_frame.status().ToString();
  EXPECT_EQ(error_frame->header.type, MessageType::kError);
  EXPECT_TRUE(DecodeErrorResponse(error_frame->payload).IsInvalidArgument());
  CloseFd(*fd);
  // A bit-flipped CRC likewise.
  auto fd2 = ConnectTcp("127.0.0.1", server->port(), 1000);
  ASSERT_TRUE(fd2.ok());
  std::string frame = EncodeFrame(MessageType::kSearch, 9,
                                  EncodeSearchRequest(SearchRequest{}));
  frame[kFrameHeaderBytes] ^= 0x01;
  ASSERT_TRUE(SendAll(*fd2, frame, 1000).ok());
  auto crc_error = RecvFrame(*fd2, 2000, 2000);
  ASSERT_TRUE(crc_error.ok());
  EXPECT_EQ(crc_error->header.type, MessageType::kError);
  CloseFd(*fd2);
  // The server still answers healthy clients afterwards.
  TindClient client(ClientFor(*server));
  EXPECT_TRUE(client.Search(0).ok());
  EXPECT_GE(server->counters().protocol_errors, 2u);
}

TEST_F(ServeTest, SlowLorisConnectionIsCutWithoutHangingTheServer) {
  ServerOptions options;
  options.io_timeout_ms = 100;
  auto server = StartServer(options);
  auto loris = ConnectTcp("127.0.0.1", server->port(), 1000);
  ASSERT_TRUE(loris.ok());
  const std::string frame =
      EncodeFrame(MessageType::kSearch, 1, EncodeSearchRequest({}));
  ASSERT_TRUE(SendAll(*loris, std::string_view(frame).substr(0, 6), 1000)
                  .ok());
  // While the loris dangles, normal traffic keeps flowing.
  TindClient client(ClientFor(*server));
  EXPECT_TRUE(client.Search(0).ok());
  // The server must cut the stalled connection within its io timeout.
  const auto cut = RecvFrame(*loris, 3000, 3000);
  EXPECT_TRUE(cut.status().IsIOError()) << cut.status().ToString();
  CloseFd(*loris);
  EXPECT_GE(server->counters().slow_loris_drops, 1u);
}

TEST_F(ServeTest, ShutdownDrainsInFlightRequests) {
  ServerOptions options;
  options.batch_linger_us = 20000;  // Hold a window open so work queues up.
  auto server = StartServer(options);
  auto fd = ConnectTcp("127.0.0.1", server->port(), 1000);
  ASSERT_TRUE(fd.ok());
  SearchRequest request;
  request.attribute = 0;
  request.epsilon = 3.0;
  request.delta = 7;
  constexpr uint64_t kBurst = 6;
  for (uint64_t id = 1; id <= kBurst; ++id) {
    ASSERT_TRUE(SendFrame(*fd, MessageType::kSearch, id,
                          EncodeSearchRequest(request), 1000)
                    .ok());
  }
  // Wait for the whole burst to be admitted: the drain guarantee covers
  // admitted requests, not bytes still sitting in the kernel's buffers.
  ASSERT_TRUE(
      WaitUntil([&] { return server->counters().accepted >= kBurst; }));
  ASSERT_EQ(server->counters().accepted, kBurst);
  server->Shutdown();  // Must drain: every queued request gets an answer.
  std::set<uint64_t> answered;
  for (uint64_t i = 0; i < kBurst; ++i) {
    auto frame = RecvFrame(*fd, 2000, 2000);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_TRUE(frame->header.type == MessageType::kSearchResult ||
                frame->header.type == MessageType::kError)
        << static_cast<int>(frame->header.type);
    answered.insert(frame->header.request_id);
  }
  EXPECT_EQ(answered.size(), kBurst);
  CloseFd(*fd);
  const auto counters = server->counters();
  EXPECT_EQ(counters.accepted,
            counters.completed + counters.deadline_exceeded);
}

TEST_F(ServeTest, IngestDisabledRejectsApplyDeltaAsFailedPrecondition) {
  auto server = StartServer(ServerOptions{});  // allow_ingest defaults off.
  TindClient client(ClientFor(*server));
  scenario::MutationSpec spec;
  spec.num_ops = 4;
  const RevisionDelta delta =
      scenario::MutateCorpus(corpus_->dataset, 3, spec);
  const auto reply = client.ApplyDelta(delta);
  EXPECT_TRUE(reply.status().IsFailedPrecondition())
      << reply.status().ToString();
  EXPECT_EQ(server->counters().deltas_applied, 0u);
  EXPECT_EQ(server->epoch_sequence(), 0u);
  // The refusal must not poison the connection for queries.
  EXPECT_TRUE(client.Search(0).ok());
}

TEST_F(ServeTest, LiveIngestFlipsServedAnswersToThePostDeltaIndex) {
  ServerOptions options;
  options.allow_ingest = true;
  auto server = StartServer(options);
  TindClient client(ClientFor(*server));

  scenario::MutationSpec spec;
  spec.num_ops = 12;
  const RevisionDelta delta =
      scenario::MutateCorpus(corpus_->dataset, 17, spec);
  auto oracle = ApplyDeltaToDataset(corpus_->dataset, delta);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_GT(oracle->dataset->size(), corpus_->dataset.size())
      << "delta added no attribute; pick another seed";
  auto rebuilt = TindIndex::Build(*oracle->dataset, BuildOptions());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();

  // Pre-delta the first added id does not exist on the server.
  const AttributeId first_added =
      static_cast<AttributeId>(corpus_->dataset.size());
  EXPECT_TRUE(client.Search(first_added).status().IsInvalidArgument());

  auto applied = client.ApplyDelta(delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->sequence, 1u);
  EXPECT_EQ(applied->versions_appended + applied->attributes_added +
                applied->attributes_retired,
            spec.num_ops);
  EXPECT_EQ(applied->slices_rebuilt, 0u);
  EXPECT_EQ(server->epoch_sequence(), 1u);
  EXPECT_EQ(server->counters().deltas_applied, 1u);

  // Post-delta every served answer — including for the new ids — must match
  // a fresh Build over the mutated corpus.
  const TindParams params = Params();
  for (size_t q = 0; q < oracle->dataset->size(); ++q) {
    const AttributeId attr = static_cast<AttributeId>(q);
    const auto& history = oracle->dataset->attribute(attr);
    auto reply = client.Search(attr);
    ASSERT_TRUE(reply.ok()) << "q=" << q << ": " << reply.status().ToString();
    EXPECT_EQ(reply->ids, (*rebuilt)->Search(history, params)) << "q=" << q;
    auto reverse = client.ReverseSearch(attr);
    ASSERT_TRUE(reverse.ok()) << reverse.status().ToString();
    EXPECT_EQ(reverse->ids, (*rebuilt)->ReverseSearch(history, params))
        << "q=" << q;
  }
  server->Shutdown();
  // Exactly one protocol error: the deliberate pre-delta out-of-range probe.
  EXPECT_EQ(server->counters().protocol_errors, 1u);
}

TEST_F(ServeTest, OpenLoopLoadAccountsForEveryRequest) {
  auto server = StartServer(ServerOptions{});
  LoadOptions load;
  load.client = ClientFor(*server);
  load.client.max_attempts = 3;
  load.qps = 120;
  load.duration_s = 0.5;
  load.workers = 2;
  load.reverse_fraction = 0.3;
  load.discovery_fraction = 0.1;
  load.num_attributes = corpus_->dataset.size();
  load.seed = 5;
  const LoadReport report = RunOpenLoopLoad(load);
  EXPECT_GT(report.offered, 0u);
  EXPECT_TRUE(report.AllAccounted())
      << report.ToJson().Dump(2);
  EXPECT_GT(report.ok, 0u);
  server->Shutdown();
}

// ---- Streaming (anytime) op ---------------------------------------------

TEST_F(ServeTest, StreamedAnswersMatchDirectIndexCallsWithSoundPartials) {
  auto server = StartServer(ServerOptions{});
  TindClient client(ClientFor(*server));
  const TindParams params = Params();
  const size_t n = corpus_->dataset.size();
  for (size_t q = 0; q < n; ++q) {
    const AttributeId attr = static_cast<AttributeId>(q);
    const auto& history = corpus_->dataset.attribute(attr);
    for (const bool reverse : {false, true}) {
      StreamReply reply;
      const Status status = reverse ? client.ReverseSearchStream(attr, &reply)
                                    : client.SearchStream(attr, &reply);
      ASSERT_TRUE(status.ok()) << status.ToString();
      const auto exact = reverse ? index_->ReverseSearch(history, params)
                                 : index_->Search(history, params);
      EXPECT_FALSE(reply.degraded) << "q=" << q;
      EXPECT_EQ(reply.ids, exact) << "q=" << q << " reverse=" << reverse;
      // Exactly one partial preceded the final frame, and it is a sound
      // superset of the exact answer.
      ASSERT_TRUE(reply.got_partial) << "q=" << q;
      EXPECT_EQ(reply.partial_stage,
                static_cast<uint8_t>(SearchStage::kProbe));
      const std::set<AttributeId> partial(reply.partial_ids.begin(),
                                          reply.partial_ids.end());
      for (const AttributeId id : exact) {
        EXPECT_TRUE(partial.count(id)) << "q=" << q << " id=" << id;
      }
      EXPECT_LE(reply.ttfr_ms, reply.total_ms) << "q=" << q;
    }
  }
  server->Shutdown();
  EXPECT_EQ(server->counters().completed, 2 * n);
  EXPECT_EQ(server->counters().degraded, 0u);
}

TEST_F(ServeTest, StreamDeadlineDegradesToBestStageWithConsent) {
  // stream_pace_ms holds the funnel between the partial and the final frame
  // long enough for the 50 ms deadline to fire deterministically mid-stream.
  ServerOptions options;
  options.stream_pace_ms = 300;
  auto server = StartServer(options);
  ClientOptions client_options = ClientFor(*server);
  client_options.deadline_ms = 50;
  client_options.allow_degraded = true;
  TindClient client(client_options);
  StreamReply reply;
  const Status status = client.SearchStream(0, &reply);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(reply.got_partial);
  EXPECT_TRUE(reply.degraded);
  // The degraded final is the best completed stage's superset: still sound.
  const auto exact = index_->Search(corpus_->dataset.attribute(0), Params());
  const std::set<AttributeId> ids(reply.ids.begin(), reply.ids.end());
  for (const AttributeId id : exact) EXPECT_TRUE(ids.count(id)) << id;
  EXPECT_TRUE(WaitUntil([&] { return server->counters().degraded >= 1; }));
  server->Shutdown();
}

TEST_F(ServeTest, StreamDeadlineWithoutConsentErrorsAfterPartial) {
  ServerOptions options;
  options.stream_pace_ms = 300;
  auto server = StartServer(options);
  ClientOptions client_options = ClientFor(*server);
  client_options.deadline_ms = 50;  // No degraded consent.
  TindClient client(client_options);
  StreamReply reply;
  const Status status = client.SearchStream(0, &reply);
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  // The partial frame arrived before the deadline killed the funnel — the
  // caller still holds a usable superset (the whole point of the op).
  EXPECT_TRUE(reply.got_partial);
  const auto exact = index_->Search(corpus_->dataset.attribute(0), Params());
  const std::set<AttributeId> partial(reply.partial_ids.begin(),
                                      reply.partial_ids.end());
  for (const AttributeId id : exact) EXPECT_TRUE(partial.count(id)) << id;
  EXPECT_TRUE(
      WaitUntil([&] { return server->counters().deadline_exceeded >= 1; }));
  server->Shutdown();
}

TEST_F(ServeTest, StreamUnderWatermarkDegradesLikeBatchRequests) {
  ServerOptions options;
  options.degrade_watermark = 0;  // Every dispatch window is "overloaded".
  auto server = StartServer(options);
  ClientOptions client_options = ClientFor(*server);
  client_options.allow_degraded = true;
  TindClient client(client_options);
  StreamReply reply;
  const Status status = client.SearchStream(0, &reply);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(reply.got_partial);
  EXPECT_TRUE(reply.degraded);
  const auto exact = index_->Search(corpus_->dataset.attribute(0), Params());
  const std::set<AttributeId> ids(reply.ids.begin(), reply.ids.end());
  for (const AttributeId id : exact) EXPECT_TRUE(ids.count(id)) << id;
  server->Shutdown();
}

TEST_F(ServeTest, MalformedStreamRequestIsTypedErrorAndServerSurvives) {
  auto server = StartServer(ServerOptions{});
  auto fd = ConnectTcp("127.0.0.1", server->port(), 1000);
  ASSERT_TRUE(fd.ok());
  // A syntactically valid frame whose payload is not a stream request.
  ASSERT_TRUE(SendFrame(*fd, MessageType::kSearchStream, 3,
                        "garbage stream payload", 1000)
                  .ok());
  auto error_frame = RecvFrame(*fd, 2000, 2000);
  ASSERT_TRUE(error_frame.ok()) << error_frame.status().ToString();
  EXPECT_EQ(error_frame->header.type, MessageType::kError);
  EXPECT_TRUE(DecodeErrorResponse(error_frame->payload).IsInvalidArgument());
  CloseFd(*fd);
  // Out-of-range attribute over the real codec path.
  TindClient client(ClientFor(*server));
  StreamReply reply;
  const Status status =
      client.SearchStream(static_cast<AttributeId>(1u << 20), &reply);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_FALSE(reply.got_partial);
  // The server still answers healthy streams afterwards.
  StreamReply healthy;
  EXPECT_TRUE(client.SearchStream(0, &healthy).ok());
  EXPECT_GE(server->counters().protocol_errors, 2u);
  server->Shutdown();
}

TEST_F(ServeTest, LoadDriverStreamsReportTimeToFirstResult) {
  auto server = StartServer(ServerOptions{});
  LoadOptions load;
  load.client = ClientFor(*server);
  load.client.max_attempts = 3;
  load.qps = 120;
  load.duration_s = 0.5;
  load.workers = 2;
  load.reverse_fraction = 0.3;
  load.stream_fraction = 1.0;  // Every query over the streaming op.
  load.hot_fraction = 0.8;     // Exercise the Zipf hot-set picker too.
  load.hot_set_fraction = 0.1;
  load.num_attributes = corpus_->dataset.size();
  load.seed = 5;
  const LoadReport report = RunOpenLoopLoad(load);
  EXPECT_GT(report.offered, 0u);
  EXPECT_TRUE(report.AllAccounted()) << report.ToJson().Dump(2);
  EXPECT_GT(report.ok, 0u);
  EXPECT_EQ(report.streams, report.offered);
  EXPECT_GE(report.stream_partials, report.ok);
  EXPECT_GT(report.ttfr_p50_ms, 0.0);
  EXPECT_LE(report.ttfr_p50_ms, report.max_ms + 1e-9)
      << report.ToJson().Dump(2);
  server->Shutdown();
}

#endif  // defined(__unix__) || defined(__APPLE__)

}  // namespace
}  // namespace tind::serve
