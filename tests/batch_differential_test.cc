#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "temporal/weights.h"
#include "tind/index.h"
#include "wiki/generator.h"

/// \file batch_differential_test.cc
/// Differential proof that the batched query engine is exact: for
/// generator-seeded corpora across a (ε, δ, w) × batch-size grid,
/// BatchSearch / BatchReverseSearch must return exactly the attribute-id
/// lists — and the same QueryStats funnels — as the equivalent sequence of
/// Search / ReverseSearch calls, with and without a ThreadPool. Batch sizes
/// straddle the kernel's 64-probe group boundary (1, 63, 64, 65) because
/// that is where mask-width bugs live.

namespace tind {
namespace {

/// Everything of a QueryStats except elapsed_ms (wall time is the one field
/// the batch path is allowed to report differently — it splits the group's
/// time evenly).
void ExpectSameFunnel(const QueryStats& batch, const QueryStats& looped,
                      const std::string& context) {
  EXPECT_EQ(batch.initial_candidates, looped.initial_candidates) << context;
  EXPECT_EQ(batch.after_slices, looped.after_slices) << context;
  EXPECT_EQ(batch.after_exact_check, looped.after_exact_check) << context;
  EXPECT_EQ(batch.num_results, looped.num_results) << context;
  EXPECT_EQ(batch.validations, looped.validations) << context;
  EXPECT_EQ(batch.used_slices, looped.used_slices) << context;
  EXPECT_EQ(batch.used_prefilter, looped.used_prefilter) << context;
}

/// Small but structurally complete generator corpus: genuine IND families,
/// noise, drifters, and catch-alls all present so every pruning stage fires.
wiki::GeneratedDataset MakeCorpus(uint64_t seed) {
  wiki::GeneratorOptions gen;
  gen.seed = seed;
  gen.num_days = 150;
  gen.num_families = 3;
  gen.num_noise_attributes = 18;
  gen.num_drifter_attributes = 8;
  gen.num_catchall_attributes = 2;
  gen.shared_vocabulary = 120;
  gen.entities_per_family_pool = 80;
  auto generated = wiki::WikiGenerator(gen).GenerateDataset();
  if (!generated.ok()) std::abort();
  return std::move(*generated);
}

/// One (ε, δ, weight-kind) point of the parameter grid. The third point
/// exceeds the build-time δ and ε so the slice and prefilter stages are
/// skipped — the batch path must mirror that skipping per query.
struct GridPoint {
  double epsilon;
  int64_t delta;
  bool decay_weight;
};

constexpr GridPoint kGrid[] = {
    {0.0, 0, false},   // Strict tIND.
    {3.0, 7, false},   // The paper's operating point (within build params).
    {6.0, 10, true},   // Exceeds build ε and δ: slices + M_R unusable.
};

class BatchDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchDifferentialTest, BatchMatchesLoopedExactly) {
  const uint64_t seed = GetParam();
  const wiki::GeneratedDataset corpus = MakeCorpus(seed);
  const Dataset& dataset = corpus.dataset;
  ASSERT_GE(dataset.size(), 8u);
  const int64_t n_days = dataset.domain().num_timestamps();
  const ConstantWeight const_w(n_days);
  const ExponentialDecayWeight decay_w(n_days, 0.98);

  TindIndexOptions opts;
  opts.bloom_bits = 512;
  opts.num_hashes = 2;
  opts.num_slices = 6;
  opts.delta = 7;
  opts.epsilon = 3.0;
  opts.build_reverse_index = true;
  opts.reverse_slices = 2;
  opts.weight = &const_w;
  opts.seed = seed * 13 + 1;
  auto built = TindIndex::Build(dataset, opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const TindIndex& index = **built;

  ThreadPool pool(3);
  const size_t n_attrs = dataset.size();

  for (const GridPoint& point : kGrid) {
    const WeightFunction* w =
        point.decay_weight ? static_cast<const WeightFunction*>(&decay_w)
                           : &const_w;
    const TindParams params{point.epsilon, point.delta, w};
    for (const bool forward : {true, false}) {
      // Looped baseline over every attribute, computed once per direction.
      std::vector<std::vector<AttributeId>> looped(n_attrs);
      std::vector<QueryStats> looped_stats(n_attrs);
      for (size_t q = 0; q < n_attrs; ++q) {
        const AttributeHistory& query =
            dataset.attribute(static_cast<AttributeId>(q));
        looped[q] = forward ? index.Search(query, params, &looped_stats[q])
                            : index.ReverseSearch(query, params,
                                                  &looped_stats[q]);
      }
      // Batch sizes around the 64-probe group boundary; queries cycle
      // through the dataset, so sizes above n_attrs exercise duplicates.
      for (const size_t batch_size : {size_t{1}, size_t{63}, size_t{64},
                                      size_t{65}}) {
        std::vector<const AttributeHistory*> queries;
        std::vector<size_t> query_ids;
        queries.reserve(batch_size);
        for (size_t i = 0; i < batch_size; ++i) {
          query_ids.push_back(i % n_attrs);
          queries.push_back(
              &dataset.attribute(static_cast<AttributeId>(i % n_attrs)));
        }
        for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
          std::vector<QueryStats> batch_stats;
          const auto batch =
              forward
                  ? index.BatchSearch(queries, params, &batch_stats, p)
                  : index.BatchReverseSearch(queries, params, &batch_stats, p);
          ASSERT_EQ(batch.size(), batch_size);
          ASSERT_EQ(batch_stats.size(), batch_size);
          for (size_t i = 0; i < batch_size; ++i) {
            const std::string context =
                "seed=" + std::to_string(seed) +
                " eps=" + std::to_string(point.epsilon) +
                " delta=" + std::to_string(point.delta) +
                (point.decay_weight ? " w=decay" : " w=const") +
                (forward ? " forward" : " reverse") +
                " batch=" + std::to_string(batch_size) + " i=" +
                std::to_string(i) + (p != nullptr ? " pooled" : " serial");
            EXPECT_EQ(batch[i], looped[query_ids[i]]) << context;
            ExpectSameFunnel(batch_stats[i], looped_stats[query_ids[i]],
                             context);
          }
        }
      }
    }
  }
}

// 20 generator-seeded corpora (the seeds are arbitrary but fixed so
// failures reproduce).
INSTANTIATE_TEST_SUITE_P(Corpora, BatchDifferentialTest,
                         ::testing::Range<uint64_t>(100, 120));

/// Degenerate inputs the grid above cannot hit: the empty batch, and a
/// query that is not an indexed attribute (no self-exclusion applies).
TEST(BatchDifferentialEdgeTest, EmptyBatchAndForeignQuery) {
  const wiki::GeneratedDataset corpus = MakeCorpus(7);
  const Dataset& dataset = corpus.dataset;
  const int64_t n_days = dataset.domain().num_timestamps();
  const ConstantWeight w(n_days);
  TindIndexOptions opts;
  opts.bloom_bits = 256;
  opts.num_hashes = 2;
  opts.num_slices = 4;
  opts.weight = &w;
  auto built = TindIndex::Build(dataset, opts);
  ASSERT_TRUE(built.ok());
  const TindIndex& index = **built;
  const TindParams params{3.0, 7, &w};

  std::vector<QueryStats> stats{QueryStats{}};  // Must be cleared to size 0.
  EXPECT_TRUE(index.BatchSearch({}, params, &stats).empty());
  EXPECT_TRUE(stats.empty());
  EXPECT_TRUE(index.BatchReverseSearch({}, params, &stats).empty());

  // A standalone history sharing the dataset's dictionary/domain: the same
  // id as attribute 0 but a different object, so no self-exclusion. The
  // batch result must match the sequential result, which includes 0 when
  // valid.
  const AttributeHistory foreign = dataset.attribute(0);
  QueryStats looped_stats;
  const auto looped = index.Search(foreign, params, &looped_stats);
  std::vector<QueryStats> batch_stats;
  const auto batch = index.BatchSearch({&foreign}, params, &batch_stats);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], looped);
  ExpectSameFunnel(batch_stats[0], looped_stats, "foreign query");
}

}  // namespace
}  // namespace tind
