#include "wiki/corpus_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"
#include "wiki/generator.h"

namespace tind::wiki {
namespace {

TEST(EscapeTest, RoundTrip) {
  const std::string nasty = "a|b%c\nd\re";
  auto back = UnescapeField(EscapeField(nasty));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, nasty);
  EXPECT_EQ(EscapeField(nasty).find('\n'), std::string::npos);
  EXPECT_EQ(EscapeField(nasty).find('|'), std::string::npos);
}

TEST(EscapeTest, PlainStringUnchanged) {
  EXPECT_EQ(EscapeField("hello world"), "hello world");
}

TEST(EscapeTest, BadEscapesRejected) {
  EXPECT_TRUE(UnescapeField("%").status().IsIOError());
  EXPECT_TRUE(UnescapeField("%2").status().IsIOError());
  EXPECT_TRUE(UnescapeField("%ZZ").status().IsIOError());
}

TEST(CorpusIoTest, RoundTripSmallDataset) {
  Dataset dataset(TimeDomain(50), std::make_shared<ValueDictionary>());
  ValueDictionary* dict = dataset.mutable_dictionary();
  const ValueId a = dict->Intern("alpha");
  const ValueId b = dict->Intern("beta|with pipe");
  AttributeHistoryBuilder builder(
      0, AttributeMeta{"Page|1", "tbl", "Col\nX"}, dataset.domain());
  ASSERT_TRUE(builder.AddVersion(3, ValueSet{a}).ok());
  ASSERT_TRUE(builder.AddVersion(10, ValueSet{a, b}).ok());
  dataset.Add(std::move(*builder.Finish()));

  GroundTruth truth;
  truth.AddGenuine("Page|1/tbl/Col\nX", "other");

  std::stringstream ss;
  ASSERT_TRUE(WriteDataset(dataset, &truth, ss).ok());
  auto loaded = ReadDataset(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dataset.domain().num_timestamps(), 50);
  ASSERT_EQ(loaded->dataset.size(), 1u);
  const AttributeHistory& h = loaded->dataset.attribute(0);
  EXPECT_EQ(h.meta().page, "Page|1");
  EXPECT_EQ(h.meta().column, "Col\nX");
  EXPECT_EQ(h.num_versions(), 2u);
  EXPECT_EQ(h.change_timestamps(), (std::vector<Timestamp>{3, 10}));
  EXPECT_EQ(loaded->dataset.dictionary().GetString(b), "beta|with pipe");
  EXPECT_EQ(h.VersionAt(10), (ValueSet{a, b}));
  EXPECT_TRUE(loaded->ground_truth.IsGenuine("Page|1/tbl/Col\nX", "other"));
}

TEST(CorpusIoTest, RoundTripGeneratedDataset) {
  GeneratorOptions opts;
  opts.seed = 3;
  opts.num_days = 400;
  opts.num_families = 4;
  opts.num_noise_attributes = 20;
  opts.num_catchall_attributes = 1;
  auto generated = WikiGenerator(opts).GenerateDataset();
  ASSERT_TRUE(generated.ok());

  std::stringstream ss;
  ASSERT_TRUE(
      WriteDataset(generated->dataset, &generated->ground_truth, ss).ok());
  auto loaded = ReadDataset(ss);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->dataset.size(), generated->dataset.size());
  for (size_t i = 0; i < loaded->dataset.size(); ++i) {
    const auto& orig = generated->dataset.attribute(static_cast<AttributeId>(i));
    const auto& back = loaded->dataset.attribute(static_cast<AttributeId>(i));
    ASSERT_EQ(orig.change_timestamps(), back.change_timestamps()) << i;
    ASSERT_EQ(orig.num_versions(), back.num_versions()) << i;
    ASSERT_EQ(orig.meta().FullName(), back.meta().FullName()) << i;
    for (size_t v = 0; v < orig.num_versions(); ++v) {
      // Value ids may be renumbered only if dictionaries differ; the writer
      // preserves ids, so they must match exactly.
      ASSERT_EQ(orig.versions()[v], back.versions()[v]) << i << " v" << v;
    }
  }
  EXPECT_EQ(loaded->ground_truth.pairs(), generated->ground_truth.pairs());
}

TEST(CorpusIoTest, NoGroundTruthSection) {
  Dataset ds(TimeDomain(10), std::make_shared<ValueDictionary>());
  const ValueId v = ds.mutable_dictionary()->Intern("x");
  AttributeHistoryBuilder builder(0, {}, ds.domain());
  ASSERT_TRUE(builder.AddVersion(0, ValueSet{v}).ok());
  ds.Add(std::move(*builder.Finish()));
  std::stringstream ss;
  ASSERT_TRUE(WriteDataset(ds, nullptr, ss).ok());
  auto loaded = ReadDataset(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ground_truth.size(), 0u);
}

TEST(CorpusIoTest, CorruptInputsRejected) {
  {
    std::stringstream ss("garbage");
    EXPECT_TRUE(ReadDataset(ss).status().IsIOError());
  }
  {
    std::stringstream ss("TIND-DATASET 1\ndomain -5\n");
    EXPECT_TRUE(ReadDataset(ss).status().IsIOError());
  }
  {
    std::stringstream ss("TIND-DATASET 1\ndomain 10\nvalues 2\nonly-one\n");
    EXPECT_TRUE(ReadDataset(ss).status().IsIOError());
  }
  {
    // Value id out of range.
    std::stringstream ss(
        "TIND-DATASET 1\ndomain 10\nvalues 1\nv0\nattributes 1\n"
        "A p|t|c 1\nV 0 1 7\n");
    EXPECT_TRUE(ReadDataset(ss).status().IsIOError());
  }
}

TEST(CorpusIoTest, FileRoundTrip) {
  Dataset ds(TimeDomain(10), std::make_shared<ValueDictionary>());
  const ValueId v = ds.mutable_dictionary()->Intern("x");
  AttributeHistoryBuilder builder(0, {}, ds.domain());
  ASSERT_TRUE(builder.AddVersion(2, ValueSet{v}).ok());
  ds.Add(std::move(*builder.Finish()));
  const std::string path = ::testing::TempDir() + "/tind_corpus_io_test.txt";
  ASSERT_TRUE(WriteDatasetFile(ds, nullptr, path).ok());
  auto loaded = ReadDatasetFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dataset.size(), 1u);
  EXPECT_TRUE(ReadDatasetFile("/nonexistent/nowhere.txt").status().IsIOError());
}

}  // namespace
}  // namespace tind::wiki
