#include "wiki/corpus_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "test_util.h"
#include "wiki/generator.h"

namespace tind::wiki {
namespace {

/// A canonical fixture whose numbered lines the corruption tests mutate:
///
///    1  TIND-DATASET 1
///    2  domain 10
///    3  values 2
///    4  alpha
///    5  beta
///    6  attributes 2
///    7  A p0|t|c 1
///    8  V 0 1 0
///    9  A p1|t|c 1
///   10  V 0 2 0 1
///   11  genuine 1
///   12  G x|y
///   13  footer <crc>
std::vector<std::string> FixtureLines() {
  Dataset ds(TimeDomain(10), std::make_shared<ValueDictionary>());
  const ValueId a = ds.mutable_dictionary()->Intern("alpha");
  const ValueId b = ds.mutable_dictionary()->Intern("beta");
  AttributeHistoryBuilder b0(0, AttributeMeta{"p0", "t", "c"}, ds.domain());
  EXPECT_TRUE(b0.AddVersion(0, ValueSet{a}).ok());
  ds.Add(std::move(*b0.Finish()));
  AttributeHistoryBuilder b1(1, AttributeMeta{"p1", "t", "c"}, ds.domain());
  EXPECT_TRUE(b1.AddVersion(0, ValueSet{a, b}).ok());
  ds.Add(std::move(*b1.Finish()));
  GroundTruth truth;
  truth.AddGenuine("x", "y");
  std::stringstream ss;
  EXPECT_TRUE(WriteDataset(ds, &truth, ss).ok());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(ss, line)) lines.push_back(line);
  EXPECT_EQ(lines.size(), 13u);
  return lines;
}

Result<LoadedDataset> ParseLines(const std::vector<std::string>& lines,
                                 bool strict) {
  std::string joined;
  for (const auto& line : lines) {
    joined += line;
    joined += '\n';
  }
  std::stringstream ss(joined);
  ReadOptions options;
  options.strict = strict;
  return ReadDataset(ss, options);
}

TEST(EscapeTest, RoundTrip) {
  const std::string nasty = "a|b%c\nd\re";
  auto back = UnescapeField(EscapeField(nasty));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, nasty);
  EXPECT_EQ(EscapeField(nasty).find('\n'), std::string::npos);
  EXPECT_EQ(EscapeField(nasty).find('|'), std::string::npos);
}

TEST(EscapeTest, PlainStringUnchanged) {
  EXPECT_EQ(EscapeField("hello world"), "hello world");
}

TEST(EscapeTest, BadEscapesRejected) {
  EXPECT_TRUE(UnescapeField("%").status().IsIOError());
  EXPECT_TRUE(UnescapeField("%2").status().IsIOError());
  EXPECT_TRUE(UnescapeField("%ZZ").status().IsIOError());
}

TEST(CorpusIoTest, RoundTripSmallDataset) {
  Dataset dataset(TimeDomain(50), std::make_shared<ValueDictionary>());
  ValueDictionary* dict = dataset.mutable_dictionary();
  const ValueId a = dict->Intern("alpha");
  const ValueId b = dict->Intern("beta|with pipe");
  AttributeHistoryBuilder builder(
      0, AttributeMeta{"Page|1", "tbl", "Col\nX"}, dataset.domain());
  ASSERT_TRUE(builder.AddVersion(3, ValueSet{a}).ok());
  ASSERT_TRUE(builder.AddVersion(10, ValueSet{a, b}).ok());
  dataset.Add(std::move(*builder.Finish()));

  GroundTruth truth;
  truth.AddGenuine("Page|1/tbl/Col\nX", "other");

  std::stringstream ss;
  ASSERT_TRUE(WriteDataset(dataset, &truth, ss).ok());
  auto loaded = ReadDataset(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dataset.domain().num_timestamps(), 50);
  ASSERT_EQ(loaded->dataset.size(), 1u);
  const AttributeHistory& h = loaded->dataset.attribute(0);
  EXPECT_EQ(h.meta().page, "Page|1");
  EXPECT_EQ(h.meta().column, "Col\nX");
  EXPECT_EQ(h.num_versions(), 2u);
  EXPECT_EQ(h.change_timestamps(), (std::vector<Timestamp>{3, 10}));
  EXPECT_EQ(loaded->dataset.dictionary().GetString(b), "beta|with pipe");
  EXPECT_EQ(h.VersionAt(10), (ValueSet{a, b}));
  EXPECT_TRUE(loaded->ground_truth.IsGenuine("Page|1/tbl/Col\nX", "other"));
}

TEST(CorpusIoTest, RoundTripGeneratedDataset) {
  GeneratorOptions opts;
  opts.seed = 3;
  opts.num_days = 400;
  opts.num_families = 4;
  opts.num_noise_attributes = 20;
  opts.num_catchall_attributes = 1;
  auto generated = WikiGenerator(opts).GenerateDataset();
  ASSERT_TRUE(generated.ok());

  std::stringstream ss;
  ASSERT_TRUE(
      WriteDataset(generated->dataset, &generated->ground_truth, ss).ok());
  auto loaded = ReadDataset(ss);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->dataset.size(), generated->dataset.size());
  for (size_t i = 0; i < loaded->dataset.size(); ++i) {
    const auto& orig = generated->dataset.attribute(static_cast<AttributeId>(i));
    const auto& back = loaded->dataset.attribute(static_cast<AttributeId>(i));
    ASSERT_EQ(orig.change_timestamps(), back.change_timestamps()) << i;
    ASSERT_EQ(orig.num_versions(), back.num_versions()) << i;
    ASSERT_EQ(orig.meta().FullName(), back.meta().FullName()) << i;
    for (size_t v = 0; v < orig.num_versions(); ++v) {
      // Value ids may be renumbered only if dictionaries differ; the writer
      // preserves ids, so they must match exactly.
      ASSERT_EQ(orig.versions()[v], back.versions()[v]) << i << " v" << v;
    }
  }
  EXPECT_EQ(loaded->ground_truth.pairs(), generated->ground_truth.pairs());
}

TEST(CorpusIoTest, NoGroundTruthSection) {
  Dataset ds(TimeDomain(10), std::make_shared<ValueDictionary>());
  const ValueId v = ds.mutable_dictionary()->Intern("x");
  AttributeHistoryBuilder builder(0, {}, ds.domain());
  ASSERT_TRUE(builder.AddVersion(0, ValueSet{v}).ok());
  ds.Add(std::move(*builder.Finish()));
  std::stringstream ss;
  ASSERT_TRUE(WriteDataset(ds, nullptr, ss).ok());
  auto loaded = ReadDataset(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ground_truth.size(), 0u);
}

TEST(CorpusIoTest, CorruptInputsRejected) {
  {
    std::stringstream ss("garbage");
    EXPECT_TRUE(ReadDataset(ss).status().IsIOError());
  }
  {
    std::stringstream ss("TIND-DATASET 1\ndomain -5\n");
    EXPECT_TRUE(ReadDataset(ss).status().IsIOError());
  }
  {
    std::stringstream ss("TIND-DATASET 1\ndomain 10\nvalues 2\nonly-one\n");
    EXPECT_TRUE(ReadDataset(ss).status().IsIOError());
  }
  {
    // Value id out of range.
    std::stringstream ss(
        "TIND-DATASET 1\ndomain 10\nvalues 1\nv0\nattributes 1\n"
        "A p|t|c 1\nV 0 1 7\n");
    EXPECT_TRUE(ReadDataset(ss).status().IsIOError());
  }
}

TEST(CorpusIoTest, FileRoundTrip) {
  Dataset ds(TimeDomain(10), std::make_shared<ValueDictionary>());
  const ValueId v = ds.mutable_dictionary()->Intern("x");
  AttributeHistoryBuilder builder(0, {}, ds.domain());
  ASSERT_TRUE(builder.AddVersion(2, ValueSet{v}).ok());
  ds.Add(std::move(*builder.Finish()));
  const std::string path = ::testing::TempDir() + "/tind_corpus_io_test.txt";
  ASSERT_TRUE(WriteDatasetFile(ds, nullptr, path).ok());
  auto loaded = ReadDatasetFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dataset.size(), 1u);
  EXPECT_TRUE(ReadDatasetFile("/nonexistent/nowhere.txt").status().IsIOError());
}

TEST(CorpusCorruptionTest, TruncationAfterFirstAttribute) {
  std::vector<std::string> lines = FixtureLines();
  lines.resize(8);  // Ends right after attribute 0's version line.
  const auto strict = ParseLines(lines, /*strict=*/true);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("line 9:"), std::string::npos)
      << strict.status().ToString();
  const auto lenient = ParseLines(lines, /*strict=*/false);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_TRUE(lenient->truncated);
  EXPECT_EQ(lenient->skipped_records, 1u);  // Attribute 1 never arrived.
  EXPECT_EQ(lenient->dataset.size(), 1u);   // Attribute 0 was salvaged.
}

TEST(CorpusCorruptionTest, BadEscapeInAttributeName) {
  std::vector<std::string> lines = FixtureLines();
  lines[6] = "A p%ZZ|t|c 1";
  const auto strict = ParseLines(lines, /*strict=*/true);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("line 7:"), std::string::npos)
      << strict.status().ToString();
  EXPECT_NE(strict.status().message().find("escape"), std::string::npos);
  const auto lenient = ParseLines(lines, /*strict=*/false);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_FALSE(lenient->truncated);
  EXPECT_EQ(lenient->skipped_records, 1u);
  ASSERT_EQ(lenient->dataset.size(), 1u);
  EXPECT_EQ(lenient->dataset.attribute(0).meta().page, "p1");
}

TEST(CorpusCorruptionTest, WrongVersionCount) {
  std::vector<std::string> lines = FixtureLines();
  lines[6] = "A p0|t|c 2";  // Claims two versions; only one follows.
  const auto strict = ParseLines(lines, /*strict=*/true);
  ASSERT_FALSE(strict.ok());
  // The error lands on the line that failed to be a version line: line 9.
  EXPECT_NE(strict.status().message().find("line 9:"), std::string::npos)
      << strict.status().ToString();
  EXPECT_NE(strict.status().message().find("version"), std::string::npos);
  const auto lenient = ParseLines(lines, /*strict=*/false);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_EQ(lenient->skipped_records, 1u);
  ASSERT_EQ(lenient->dataset.size(), 1u);  // Resynced on attribute 1.
  EXPECT_EQ(lenient->dataset.attribute(0).meta().page, "p1");
}

TEST(CorpusCorruptionTest, ValueIdOutOfRange) {
  std::vector<std::string> lines = FixtureLines();
  lines[7] = "V 0 1 7";  // The dictionary has only ids 0 and 1.
  const auto strict = ParseLines(lines, /*strict=*/true);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("line 8:"), std::string::npos)
      << strict.status().ToString();
  EXPECT_NE(strict.status().message().find("value id"), std::string::npos);
  const auto lenient = ParseLines(lines, /*strict=*/false);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_EQ(lenient->skipped_records, 1u);
  EXPECT_EQ(lenient->dataset.size(), 1u);
}

TEST(CorpusCorruptionTest, GarbageHeaderFailsEvenLeniently) {
  std::vector<std::string> lines = FixtureLines();
  lines[0] = "NOT-A-DATASET";
  for (const bool strict : {true, false}) {
    const auto result = ParseLines(lines, strict);
    ASSERT_FALSE(result.ok()) << "strict=" << strict;
    EXPECT_NE(result.status().message().find("line 1:"), std::string::npos)
        << result.status().ToString();
  }
}

TEST(CorpusCorruptionTest, BitRotCaughtByCrcInStrictMode) {
  std::vector<std::string> lines = FixtureLines();
  lines[3] = "alphb";  // One flipped byte; still a parseable value.
  const auto strict = ParseLines(lines, /*strict=*/true);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("line 13:"), std::string::npos)
      << strict.status().ToString();
  EXPECT_NE(strict.status().message().find("CRC mismatch"), std::string::npos);
  // Lenient mode cannot use the CRC (skips falsify it); the flipped value
  // parses, so the read succeeds.
  const auto lenient = ParseLines(lines, /*strict=*/false);
  EXPECT_TRUE(lenient.ok()) << lenient.status().ToString();
}

TEST(CorpusCorruptionTest, TrailingDataAfterFooter) {
  std::vector<std::string> lines = FixtureLines();
  lines.push_back("extra junk");
  const auto strict = ParseLines(lines, /*strict=*/true);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("line 14:"), std::string::npos)
      << strict.status().ToString();
  EXPECT_TRUE(ParseLines(lines, /*strict=*/false).ok());
}

TEST(CorpusCorruptionTest, BadGenuinePair) {
  std::vector<std::string> lines = FixtureLines();
  lines[11] = "G onlyonefield";
  const auto strict = ParseLines(lines, /*strict=*/true);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("line 12:"), std::string::npos)
      << strict.status().ToString();
  const auto lenient = ParseLines(lines, /*strict=*/false);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_EQ(lenient->skipped_records, 1u);
  EXPECT_EQ(lenient->ground_truth.size(), 0u);
}

TEST(CorpusCorruptionTest, GenuineSectionShorterThanDeclared) {
  std::vector<std::string> lines = FixtureLines();
  lines[10] = "genuine 3";  // Only one pair follows.
  const auto strict = ParseLines(lines, /*strict=*/true);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("line 13:"), std::string::npos)
      << strict.status().ToString();
  const auto lenient = ParseLines(lines, /*strict=*/false);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_EQ(lenient->skipped_records, 2u);
  EXPECT_EQ(lenient->ground_truth.size(), 1u);
}

TEST(CorpusCorruptionTest, MissingFooterIsTruncation) {
  std::vector<std::string> lines = FixtureLines();
  lines.pop_back();
  const auto strict = ParseLines(lines, /*strict=*/true);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("footer"), std::string::npos);
  const auto lenient = ParseLines(lines, /*strict=*/false);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_TRUE(lenient->truncated);
  EXPECT_EQ(lenient->dataset.size(), 2u);  // All data was still present.
}

TEST(CorpusIoTest, AtomicWriteLeavesNoTempFile) {
  Dataset ds(TimeDomain(10), std::make_shared<ValueDictionary>());
  const ValueId v = ds.mutable_dictionary()->Intern("x");
  AttributeHistoryBuilder builder(0, {}, ds.domain());
  ASSERT_TRUE(builder.AddVersion(2, ValueSet{v}).ok());
  ds.Add(std::move(*builder.Finish()));
  const std::string path = ::testing::TempDir() + "/tind_corpus_atomic.txt";
  ASSERT_TRUE(WriteDatasetFile(ds, nullptr, path).ok());
  EXPECT_TRUE(std::ifstream(path).good());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tind::wiki
