#include "eval/selfcheck.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace tind::eval {
namespace {

SelfCheckOptions SmallOptions() {
  SelfCheckOptions options;
  options.target_attributes = 80;
  options.num_days = 300;
  options.oracle_queries = 4;
  options.seed = 11;
  return options;
}

TEST(SelfCheckTest, PassesOnSmallCorpusAndEmitsParsableReport) {
  const auto report = RunSelfCheck(SmallOptions());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok) << report->failure;
  EXPECT_GT(report->num_attributes, 0u);
  EXPECT_FALSE(report->summary.empty());

  std::string error;
  const auto doc = obs::JsonValue::Parse(report->json, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_NE(doc->Find("ok"), nullptr);
  EXPECT_TRUE(doc->Find("ok")->AsBool());

  // Every oracle/funnel check is listed, and all passed.
  const obs::JsonValue* checks = doc->Find("checks");
  ASSERT_NE(checks, nullptr);
  ASSERT_TRUE(checks->is_array());
  EXPECT_GT(checks->size(), 0u);
  for (size_t i = 0; i < checks->size(); ++i) {
    const obs::JsonValue* passed = checks->at(i).Find("ok");
    ASSERT_NE(passed, nullptr);
    EXPECT_TRUE(passed->AsBool())
        << checks->at(i).Find("name")->AsString();
  }
}

#if !TIND_OBS_DISABLED
TEST(SelfCheckTest, ReportCarriesPhaseTimingsAndProbeCounters) {
  const auto report = RunSelfCheck(SmallOptions());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const auto doc = obs::JsonValue::Parse(report->json);
  ASSERT_TRUE(doc.has_value());

  // Per-phase span timings: index build (with its sub-phases), the M_T
  // probe, and the time-slice search stage must all be present with at
  // least one recorded observation and a non-negative total.
  for (const char* span :
       {"span/index_build", "span/index_build/m_t", "span/index_build/slices",
        "span/search", "span/search/m_t_probe", "span/search/slice_prune"}) {
    const obs::JsonValue* hist =
        doc->FindPath("metrics.histograms")->Find(span);
    ASSERT_NE(hist, nullptr) << span;
    EXPECT_GE(hist->Find("count")->AsInt(), 1) << span;
    EXPECT_GE(hist->Find("sum")->AsDouble(), 0.0) << span;
  }

  // Probe counters from the Bloom matrix and slice pruning.
  const obs::JsonValue* counters = doc->FindPath("metrics.counters");
  ASSERT_NE(counters, nullptr);
  for (const char* counter :
       {"bloom/superset_queries", "bloom/superset_rows_probed",
        "search/queries", "search/slice_probes", "validate/calls"}) {
    const obs::JsonValue* value = counters->Find(counter);
    ASSERT_NE(value, nullptr) << counter;
    EXPECT_GT(value->AsInt(), 0) << counter;
  }

  // The corpus block reflects the options we passed.
  EXPECT_EQ(doc->FindPath("corpus.seed")->AsInt(), 11);
  EXPECT_EQ(doc->FindPath("corpus.days")->AsInt(), 300);
}
#endif  // !TIND_OBS_DISABLED

TEST(SelfCheckTest, RestoresGlobalRegistryEnabledState) {
  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  const bool before = global.enabled();
  global.set_enabled(false);
  SelfCheckOptions options = SmallOptions();
  options.run_discovery = false;  // Keep this one quick.
  const auto report = RunSelfCheck(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(global.enabled());
  global.set_enabled(before);
}

}  // namespace
}  // namespace tind::eval
