#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tind {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad m");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad m");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad m");
}

TEST(StatusTest, EveryFactoryMapsToItsPredicate) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfMemory("x").IsOutOfMemory());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
}

TEST(StatusTest, PredicatesAreExclusive) {
  const Status s = Status::NotFound("x");
  EXPECT_FALSE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsOutOfMemory());
  EXPECT_FALSE(s.IsInternal());
}

TEST(StatusTest, CopyPreservesState) {
  const Status a = Status::IOError("disk gone");
  const Status b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(b.IsIOError());
  EXPECT_EQ(b.message(), "disk gone");
  EXPECT_EQ(a, b);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfMemory), "Out of memory");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal error");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "Resource exhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "Deadline exceeded");
}

TEST(StatusExitCodeTest, DistinctCodesPerRejectionType) {
  EXPECT_EQ(StatusExitCode(Status::OK()), 0);
  EXPECT_EQ(StatusExitCode(Status::NotFound("x")), 2);
  EXPECT_EQ(StatusExitCode(Status::IOError("x")), 3);
  EXPECT_EQ(StatusExitCode(Status::InvalidArgument("x")), 4);
  EXPECT_EQ(StatusExitCode(Status::FailedPrecondition("x")), 4);
  EXPECT_EQ(StatusExitCode(Status::OutOfMemory("x")), 5);
  EXPECT_EQ(StatusExitCode(Status::ResourceExhausted("x")), 6);
  EXPECT_EQ(StatusExitCode(Status::DeadlineExceeded("x")), 7);
  EXPECT_EQ(StatusExitCode(Status::Internal("x")), 1);
  EXPECT_EQ(StatusExitCode(Status::Cancelled("x")), 1);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  TIND_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TIND_ASSIGN_OR_RETURN(const int h, Half(x));
  return Half(h);
}

}  // namespace helpers

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::Chain(1).ok());
  EXPECT_TRUE(helpers::Chain(-1).IsInvalidArgument());
}

TEST(StatusMacroTest, AssignOrReturnPropagatesAndBinds) {
  const Result<int> ok = helpers::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(helpers::Quarter(6).status().IsInvalidArgument());
  EXPECT_TRUE(helpers::Quarter(3).status().IsInvalidArgument());
}

}  // namespace
}  // namespace tind
