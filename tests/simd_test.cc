#include "common/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/aligned_vector.h"
#include "common/bitvector.h"
#include "common/hash.h"
#include "common/rng.h"

/// \file simd_test.cc
/// Dispatch-layer tests plus kernel property tests: every backend the binary
/// compiled in and the CPU supports must agree bit-for-bit with the scalar
/// reference on random padded buffers, and BitVector must uphold its
/// padding-stays-zero / 64-byte-alignment invariants through every mutating
/// operation.

namespace tind {
namespace {

/// Pins a backend for the enclosing scope and always restores auto dispatch,
/// so a failing assertion cannot leak a forced backend into later tests.
class ScopedBackend {
 public:
  explicit ScopedBackend(simd::Backend backend)
      : forced_(simd::ForceBackend(backend)) {}
  ~ScopedBackend() { simd::ClearForcedBackend(); }
  bool forced() const { return forced_; }

 private:
  bool forced_;
};

WordVector RandomWords(Rng* rng, size_t n, double zero_fraction = 0.0) {
  WordVector v(n);
  for (auto& w : v) {
    w = rng->Bernoulli(zero_fraction) ? 0 : rng->Next();
  }
  return v;
}

TEST(SimdDispatchTest, ScalarAlwaysAvailable) {
  const std::vector<simd::Backend> backends = simd::AvailableBackends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.front(), simd::Backend::kScalar);
  EXPECT_NE(simd::OpsFor(simd::Backend::kScalar), nullptr);
}

TEST(SimdDispatchTest, NamesRoundTrip) {
  for (const simd::Backend b : simd::AvailableBackends()) {
    simd::Backend parsed;
    ASSERT_TRUE(simd::BackendFromName(simd::BackendName(b), &parsed));
    EXPECT_EQ(parsed, b);
  }
  simd::Backend parsed;
  EXPECT_FALSE(simd::BackendFromName("mmx", &parsed));
  EXPECT_FALSE(simd::BackendFromName("", &parsed));
}

TEST(SimdDispatchTest, ForceBackendWinsAndClears) {
  const simd::Backend before = simd::ActiveBackend();
  for (const simd::Backend b : simd::AvailableBackends()) {
    ScopedBackend guard(b);
    ASSERT_TRUE(guard.forced());
    EXPECT_EQ(simd::ActiveBackend(), b);
    EXPECT_EQ(simd::Ops().backend, b);
  }
  EXPECT_EQ(simd::ActiveBackend(), before);
}

TEST(SimdDispatchTest, OpsForUnavailableBackendIsNull) {
#if defined(__x86_64__)
  EXPECT_EQ(simd::OpsFor(simd::Backend::kNeon), nullptr);
  EXPECT_FALSE(simd::ForceBackend(simd::Backend::kNeon));
#else
  EXPECT_EQ(simd::OpsFor(simd::Backend::kSse2), nullptr);
  EXPECT_FALSE(simd::ForceBackend(simd::Backend::kSse2));
#endif
}

TEST(SimdDispatchTest, SelectionLogMentionsActiveBackend) {
  const std::string log = simd::SelectionLog();
  EXPECT_NE(log.find("active backend: "), std::string::npos);
  EXPECT_NE(log.find(simd::BackendName(simd::ActiveBackend())),
            std::string::npos);
  EXPECT_NE(log.find("compiled backends:"), std::string::npos);
}

TEST(SimdDispatchTest, DetectBestBackendIsAvailable) {
  EXPECT_NE(simd::OpsFor(simd::DetectBestBackend()), nullptr);
}

/// Word-kernel equivalence against the scalar reference, across buffer sizes
/// (all multiples of kSimdAlignWords, per the kernel contract) and zero
/// densities (so the any/or_reduce zero classification is exercised on both
/// sides).
TEST(SimdKernelPropertyTest, AllBackendsMatchScalar) {
  const simd::WordOps* scalar = simd::OpsFor(simd::Backend::kScalar);
  ASSERT_NE(scalar, nullptr);
  Rng rng(2024);
  for (const simd::Backend b : simd::AvailableBackends()) {
    const simd::WordOps* ops = simd::OpsFor(b);
    ASSERT_NE(ops, nullptr);
    for (const size_t n : {size_t{8}, size_t{16}, size_t{24}, size_t{64},
                           size_t{256}}) {
      for (const double zero_fraction : {0.0, 0.5, 1.0}) {
        for (int round = 0; round < 8; ++round) {
          const WordVector a = RandomWords(&rng, n, zero_fraction);
          const WordVector src = RandomWords(&rng, n, zero_fraction);
          const std::string context = std::string("backend=") +
                                      std::string(simd::BackendName(b)) +
                                      " n=" + std::to_string(n);

          WordVector got = a, want = a;
          ops->and_words(got.data(), src.data(), n);
          scalar->and_words(want.data(), src.data(), n);
          EXPECT_EQ(got, want) << context << " and_words";

          got = a;
          want = a;
          ops->andnot_words(got.data(), src.data(), n);
          scalar->andnot_words(want.data(), src.data(), n);
          EXPECT_EQ(got, want) << context << " andnot_words";

          got = a;
          want = a;
          ops->or_words(got.data(), src.data(), n);
          scalar->or_words(want.data(), src.data(), n);
          EXPECT_EQ(got, want) << context << " or_words";

          got = a;
          want = a;
          ops->xor_words(got.data(), src.data(), n);
          scalar->xor_words(want.data(), src.data(), n);
          EXPECT_EQ(got, want) << context << " xor_words";

          got = a;
          want = a;
          const uint64_t got_any = ops->and_words_any(got.data(), src.data(), n);
          const uint64_t want_any =
              scalar->and_words_any(want.data(), src.data(), n);
          EXPECT_EQ(got, want) << context << " and_words_any";
          EXPECT_EQ(got_any == 0, want_any == 0) << context << " and_words_any";

          got = a;
          want = a;
          const uint64_t got_nany =
              ops->andnot_words_any(got.data(), src.data(), n);
          const uint64_t want_nany =
              scalar->andnot_words_any(want.data(), src.data(), n);
          EXPECT_EQ(got, want) << context << " andnot_words_any";
          EXPECT_EQ(got_nany == 0, want_nany == 0)
              << context << " andnot_words_any";

          EXPECT_EQ(ops->or_reduce(a.data(), n) == 0,
                    scalar->or_reduce(a.data(), n) == 0)
              << context << " or_reduce";
          EXPECT_EQ(ops->popcount_words(a.data(), n),
                    scalar->popcount_words(a.data(), n))
              << context << " popcount_words";
        }
      }
    }
  }
}

/// double_hash_many must reproduce DoubleHash::FromValue exactly for every
/// backend, including ragged lengths (it is the one kernel with no
/// size/alignment contract).
TEST(SimdKernelPropertyTest, DoubleHashManyMatchesReference) {
  Rng rng(7);
  for (const simd::Backend b : simd::AvailableBackends()) {
    const simd::WordOps* ops = simd::OpsFor(b);
    ASSERT_NE(ops, nullptr);
    for (const size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{7},
                           size_t{8}, size_t{9}, size_t{64}, size_t{65},
                           size_t{200}}) {
      std::vector<uint32_t> values(n);
      for (auto& v : values) v = static_cast<uint32_t>(rng.Next());
      std::vector<uint64_t> h1(n), h2(n);
      ops->double_hash_many(values.data(), n, h1.data(), h2.data());
      for (size_t i = 0; i < n; ++i) {
        const DoubleHash want = DoubleHash::FromValue(values[i]);
        EXPECT_EQ(h1[i], want.h1)
            << simd::BackendName(b) << " n=" << n << " i=" << i;
        EXPECT_EQ(h2[i], want.h2)
            << simd::BackendName(b) << " n=" << n << " i=" << i;
      }
    }
  }
}

/// BitVector invariants under the SIMD-routed operations: padding beyond
/// size() stays zero after every mutating op, storage is 64-byte aligned and
/// padded, and results match a std::vector<bool> reference.
TEST(SimdBitVectorTest, AlignmentAndPadding) {
  for (const size_t bits : {size_t{1}, size_t{64}, size_t{100}, size_t{512},
                            size_t{513}, size_t{1000}}) {
    BitVector v(bits, true);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(v.words().data()) % kSimdAlignBytes,
              0u)
        << bits;
    EXPECT_EQ(v.words().size() % kSimdAlignWords, 0u) << bits;
    EXPECT_TRUE(v.PaddingIsZero()) << bits;
    v.Flip();
    EXPECT_TRUE(v.PaddingIsZero()) << bits << " after Flip";
    v.SetAll();
    EXPECT_TRUE(v.PaddingIsZero()) << bits << " after SetAll";
    EXPECT_EQ(v.Count(), bits) << bits;
    BitVector other(bits, true);
    v.Xor(other);
    EXPECT_TRUE(v.PaddingIsZero()) << bits << " after Xor";
    EXPECT_TRUE(v.None()) << bits;
    v.Or(other);
    EXPECT_TRUE(v.PaddingIsZero()) << bits << " after Or";
    v.AndNot(other);
    EXPECT_TRUE(v.PaddingIsZero()) << bits << " after AndNot";
    v.And(other);
    EXPECT_TRUE(v.PaddingIsZero()) << bits << " after And";
  }
}

TEST(SimdBitVectorTest, OpsMatchReferenceOnEveryBackend) {
  Rng rng(41);
  const size_t n = 777;  // Deliberately not a multiple of 64.
  for (const simd::Backend backend : simd::AvailableBackends()) {
    ScopedBackend guard(backend);
    ASSERT_TRUE(guard.forced());
    BitVector a(n), b(n);
    std::vector<bool> ra(n, false), rb(n, false);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.4)) {
        a.Set(i);
        ra[i] = true;
      }
      if (rng.Bernoulli(0.4)) {
        b.Set(i);
        rb[i] = true;
      }
    }
    const auto check = [&](const BitVector& got, const std::vector<bool>& want,
                           const char* op) {
      size_t want_count = 0;
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got.Get(i), want[i])
            << simd::BackendName(backend) << " " << op << " bit " << i;
        want_count += want[i] ? 1 : 0;
      }
      EXPECT_EQ(got.Count(), want_count)
          << simd::BackendName(backend) << " " << op;
      EXPECT_TRUE(got.PaddingIsZero())
          << simd::BackendName(backend) << " " << op;
    };

    BitVector t = a;
    std::vector<bool> rt = ra;
    t.And(b);
    for (size_t i = 0; i < n; ++i) rt[i] = rt[i] && rb[i];
    check(t, rt, "And");

    t = a;
    rt = ra;
    t.AndNot(b);
    for (size_t i = 0; i < n; ++i) rt[i] = rt[i] && !rb[i];
    check(t, rt, "AndNot");

    t = a;
    rt = ra;
    t.Or(b);
    for (size_t i = 0; i < n; ++i) rt[i] = rt[i] || rb[i];
    check(t, rt, "Or");

    t = a;
    rt = ra;
    t.Xor(b);
    for (size_t i = 0; i < n; ++i) rt[i] = rt[i] != rb[i];
    check(t, rt, "Xor");

    EXPECT_FALSE(a.None());
    EXPECT_TRUE(BitVector(n).None());
  }
}

}  // namespace
}  // namespace tind
