#include "tind/partial.h"

#include <gtest/gtest.h>

#include <tuple>

#include "test_util.h"
#include "tind/validator.h"

namespace tind {
namespace {

using testutil::MakeHistory;

TEST(DeltaCoverageTest, FractionOfContainedValues) {
  const TimeDomain domain(10);
  const auto q = MakeHistory(domain, {{0, ValueSet{1, 2, 3, 4}}});
  const auto a = MakeHistory(domain, {{0, ValueSet{1, 2}}});
  EXPECT_DOUBLE_EQ(DeltaCoverageAt(q, a, 5, 0, domain), 0.5);
}

TEST(DeltaCoverageTest, EmptyQueryFullyCovered) {
  const TimeDomain domain(10);
  const auto q = MakeHistory(domain, {{5, ValueSet{1}}});
  const auto a = MakeHistory(domain, {{0, ValueSet{9}}});
  EXPECT_DOUBLE_EQ(DeltaCoverageAt(q, a, 0, 0, domain), 1.0);  // Pre-birth.
}

TEST(DeltaCoverageTest, DeltaWindowWidensCoverage) {
  const TimeDomain domain(10);
  const auto q = MakeHistory(domain, {{0, ValueSet{1, 2}}});
  const auto a = MakeHistory(domain, {{0, ValueSet{1}}, {5, ValueSet{2}}});
  EXPECT_DOUBLE_EQ(DeltaCoverageAt(q, a, 4, 0, domain), 0.5);
  EXPECT_DOUBLE_EQ(DeltaCoverageAt(q, a, 4, 1, domain), 1.0);
}

TEST(PartialTindTest, CoverageOneEqualsExactTind) {
  const TimeDomain domain(30);
  const ConstantWeight w(30);
  const auto q = MakeHistory(
      domain, {{0, ValueSet{1, 2}}, {10, ValueSet{1, 9}}, {20, ValueSet{1}}});
  const auto a = MakeHistory(domain, {{0, ValueSet{1, 2, 3}}});
  for (const double eps : {0.0, 5.0, 30.0}) {
    for (const int64_t delta : {0, 3}) {
      const TindParams base{eps, delta, &w};
      const PartialTindParams params{base, 1.0};
      EXPECT_EQ(ValidatePartialTind(q, a, params, domain),
                ValidateTind(q, a, base, domain))
          << "eps=" << eps << " delta=" << delta;
    }
  }
}

TEST(PartialTindTest, SpellingVariantAbsorbedByCoverage) {
  // The Section 3.3 scenario: one value of Q uses a representation A never
  // adopts (USA vs United States). Exact tINDs fail at any ε below the full
  // violated weight; coverage 0.75 absorbs it entirely.
  const TimeDomain domain(100);
  const ConstantWeight w(100);
  // Q = {USA(5), a, b, c} always; A = {United States(9), a, b, c} always.
  const auto q = MakeHistory(domain, {{0, ValueSet{5, 1, 2, 3}}});
  const auto a = MakeHistory(domain, {{0, ValueSet{9, 1, 2, 3}}});
  const TindParams base{3.0, 7, &w};
  EXPECT_FALSE(ValidateTind(q, a, base, domain));
  EXPECT_TRUE(ValidatePartialTind(q, a, {base, 0.75}, domain));
  EXPECT_FALSE(ValidatePartialTind(q, a, {base, 0.80}, domain));
}

TEST(PartialTindTest, ViolationWeightMatchesThreshold) {
  const TimeDomain domain(50);
  const ConstantWeight w(50);
  // Q: 2 values, one missing from A during days 20..29.
  const auto q = MakeHistory(domain, {{0, ValueSet{1, 2}}});
  const auto a = MakeHistory(domain, {{0, ValueSet{1, 2}},
                                      {20, ValueSet{1}},
                                      {30, ValueSet{1, 2}}});
  // Coverage 1.0: 10 violated days; coverage 0.5: none.
  EXPECT_DOUBLE_EQ(ComputePartialViolationWeight(q, a, 0, 1.0, w, domain),
                   10.0);
  EXPECT_DOUBLE_EQ(ComputePartialViolationWeight(q, a, 0, 0.5, w, domain),
                   0.0);
}

TEST(PartialTindTest, CoverageMonotone) {
  Rng rng(31);
  const TimeDomain domain(60);
  const ConstantWeight w(60);
  for (int trial = 0; trial < 30; ++trial) {
    const auto q = testutil::RandomHistory(domain, &rng, 12, 0);
    const auto a = testutil::RandomHistory(domain, &rng, 12, 1);
    double prev = -1;
    for (const double coverage : {1.0, 0.8, 0.5, 0.2}) {
      const double v =
          ComputePartialViolationWeight(q, a, 2, coverage, w, domain);
      if (prev >= 0) {
        EXPECT_LE(v, prev + 1e-9) << "trial " << trial << " cov " << coverage;
      }
      prev = v;
    }
  }
}

/// Property: the interval sweep must agree with the per-timestamp oracle.
class PartialEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int64_t, double, double>> {
};

TEST_P(PartialEquivalenceTest, SweepMatchesNaive) {
  const auto [seed, delta, eps, coverage] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 511 + 3);
  const TimeDomain domain(70);
  const ConstantWeight w(70);
  for (int trial = 0; trial < 30; ++trial) {
    const auto q = testutil::RandomHistory(domain, &rng, 10, 0);
    const auto a = testutil::RandomHistory(domain, &rng, 10, 1);
    const PartialTindParams params{TindParams{eps, delta, &w}, coverage};
    ASSERT_EQ(ValidatePartialTind(q, a, params, domain),
              ValidatePartialTindNaive(q, a, params, domain))
        << "seed=" << seed << " trial=" << trial << " delta=" << delta
        << " eps=" << eps << " coverage=" << coverage;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartialEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::Values<int64_t>(0, 2, 7),
                       ::testing::Values(0.0, 3.0),
                       ::testing::Values(1.0, 0.75, 0.5)));

TEST(PartialTindTest, GeneralizesExactOnRandomPairs) {
  // Lower coverage can only accept more pairs.
  Rng rng(77);
  const TimeDomain domain(80);
  const ConstantWeight w(80);
  for (int trial = 0; trial < 40; ++trial) {
    const auto q = testutil::RandomHistory(domain, &rng, 10, 0);
    const auto a = testutil::RandomHistory(domain, &rng, 10, 1);
    const TindParams base{2.0, 3, &w};
    if (ValidateTind(q, a, base, domain)) {
      EXPECT_TRUE(ValidatePartialTind(q, a, {base, 0.6}, domain))
          << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace tind
