#include "tind/discovery.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "common/fault_injection.h"
#include "test_util.h"
#include "tind/checkpoint.h"
#include "tind/validator.h"

namespace tind {
namespace {

class DiscoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(17);
    dataset_ = Dataset(TimeDomain(90), std::make_shared<ValueDictionary>());
    for (size_t i = 0; i < 35; ++i) {
      dataset_.Add(testutil::RandomHistory(dataset_.domain(), &rng, 12,
                                           static_cast<AttributeId>(i), 5, 5));
    }
    weight_ = std::make_unique<ConstantWeight>(90);
    TindIndexOptions opts;
    opts.bloom_bits = 512;
    opts.num_hashes = 2;
    opts.num_slices = 4;
    opts.delta = 4;
    opts.epsilon = 3.0;
    opts.weight = weight_.get();
    auto index = TindIndex::Build(dataset_, opts);
    ASSERT_TRUE(index.ok());
    index_ = std::move(*index);
  }

  std::set<TindPair> NaiveAllPairs(const TindParams& params) const {
    std::set<TindPair> expected;
    for (AttributeId a = 0; a < dataset_.size(); ++a) {
      for (AttributeId b = 0; b < dataset_.size(); ++b) {
        if (a == b) continue;
        if (ValidateTindNaive(dataset_.attribute(a), dataset_.attribute(b),
                              params, dataset_.domain())) {
          expected.insert(TindPair{a, b});
        }
      }
    }
    return expected;
  }

  Dataset dataset_;
  std::unique_ptr<ConstantWeight> weight_;
  std::unique_ptr<TindIndex> index_;
};

TEST_F(DiscoveryTest, SequentialMatchesNaive) {
  const TindParams params{3.0, 2, weight_.get()};
  const AllPairsResult result = DiscoverAllTinds(*index_, params, nullptr);
  const std::set<TindPair> expected = NaiveAllPairs(params);
  EXPECT_EQ(std::set<TindPair>(result.pairs.begin(), result.pairs.end()),
            expected);
  EXPECT_EQ(result.num_queries, dataset_.size());
  EXPECT_GE(result.elapsed_seconds, 0.0);
}

TEST_F(DiscoveryTest, ParallelMatchesSequential) {
  ThreadPool pool(4);
  const TindParams params{3.0, 2, weight_.get()};
  const AllPairsResult serial = DiscoverAllTinds(*index_, params, nullptr);
  const AllPairsResult parallel = DiscoverAllTinds(*index_, params, &pool);
  EXPECT_EQ(serial.pairs, parallel.pairs);
}

TEST_F(DiscoveryTest, PairsSortedAndUnique) {
  const TindParams params{3.0, 2, weight_.get()};
  const AllPairsResult result = DiscoverAllTinds(*index_, params, nullptr);
  for (size_t i = 1; i < result.pairs.size(); ++i) {
    EXPECT_TRUE(result.pairs[i - 1] < result.pairs[i]);
  }
}

TEST_F(DiscoveryTest, NoSelfPairs) {
  const TindParams params{90.0, 4, weight_.get()};  // Everything included.
  const AllPairsResult result = DiscoverAllTinds(*index_, params, nullptr);
  for (const TindPair& p : result.pairs) EXPECT_NE(p.lhs, p.rhs);
  // With eps = total weight, every ordered pair holds.
  EXPECT_EQ(result.pairs.size(), dataset_.size() * (dataset_.size() - 1));
}

TEST_F(DiscoveryTest, StrictSubsetOfRelaxed) {
  const TindParams strict{0.0, 0, weight_.get()};
  const TindParams relaxed{3.0, 2, weight_.get()};
  const AllPairsResult s = DiscoverAllTinds(*index_, strict, nullptr);
  const AllPairsResult r = DiscoverAllTinds(*index_, relaxed, nullptr);
  const std::set<TindPair> relaxed_set(r.pairs.begin(), r.pairs.end());
  for (const TindPair& p : s.pairs) {
    EXPECT_TRUE(relaxed_set.count(p)) << p.lhs << " in " << p.rhs;
  }
}

TEST_F(DiscoveryTest, OptionsOverloadMatchesLegacy) {
  const TindParams params{3.0, 2, weight_.get()};
  const AllPairsResult legacy = DiscoverAllTinds(*index_, params, nullptr);
  auto result = DiscoverAllTinds(*index_, params, DiscoveryOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->pairs, legacy.pairs);
  EXPECT_EQ(result->resumed_queries, 0u);
  EXPECT_EQ(result->checkpoints_written, 0u);
}

TEST_F(DiscoveryTest, PreCancelledTokenStopsImmediately) {
  const TindParams params{3.0, 2, weight_.get()};
  CancellationToken cancel;
  cancel.Cancel();
  DiscoveryOptions options;
  options.cancel = &cancel;
  auto result = DiscoverAllTinds(*index_, params, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
}

TEST_F(DiscoveryTest, MemoryBudgetOverflowIsOutOfMemoryAndReleased) {
  const TindParams params{90.0, 4, weight_.get()};  // Maximal result set.
  MemoryBudget budget(16);  // Room for four result ids in total.
  DiscoveryOptions options;
  options.memory = &budget;
  auto result = DiscoverAllTinds(*index_, params, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfMemory()) << result.status().ToString();
  EXPECT_EQ(budget.used(), 0u);  // The reservation was returned.
}

TEST_F(DiscoveryTest, CheckpointWrittenAndDeletedOnSuccess) {
  const TindParams params{3.0, 2, weight_.get()};
  const std::string path = ::testing::TempDir() + "disc-success-ckpt";
  std::remove(path.c_str());
  DiscoveryOptions options;
  options.checkpoint_path = path;
  options.checkpoint_interval = 4;
  auto result = DiscoverAllTinds(*index_, params, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->checkpoints_written, 0u);
  EXPECT_EQ(result->checkpoint_failures, 0u);
  EXPECT_FALSE(std::ifstream(path).good()) << "checkpoint not cleaned up";
}

TEST_F(DiscoveryTest, ResumeFromCheckpointProducesIdenticalPairs) {
  const TindParams params{3.0, 2, weight_.get()};
  const AllPairsResult baseline = DiscoverAllTinds(*index_, params, nullptr);

  // Simulate a killed run: persist a checkpoint carrying the first 20
  // queries' results, then resume. The resumed run must skip those queries
  // and still produce a pair set bit-identical to the uninterrupted one.
  DiscoveryCheckpoint checkpoint;
  checkpoint.num_queries = dataset_.size();
  for (AttributeId q = 0; q < 20; ++q) {
    std::vector<AttributeId> rhs =
        index_->Search(dataset_.attribute(q), params);
    checkpoint.completed.emplace_back(q, std::move(rhs));
  }
  const std::string path = ::testing::TempDir() + "disc-resume-ckpt";
  ASSERT_TRUE(SaveDiscoveryCheckpoint(checkpoint, path).ok());

  DiscoveryOptions options;
  options.checkpoint_path = path;
  auto resumed = DiscoverAllTinds(*index_, params, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->resumed_queries, 20u);
  EXPECT_EQ(resumed->pairs, baseline.pairs);
  std::remove(path.c_str());
}

TEST_F(DiscoveryTest, CorruptCheckpointIsIgnoredNotFatal) {
  const TindParams params{3.0, 2, weight_.get()};
  const AllPairsResult baseline = DiscoverAllTinds(*index_, params, nullptr);
  const std::string path = ::testing::TempDir() + "disc-corrupt-ckpt";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "TIND-CKPT 1 9999\nnot a record at all\n";
  }
  DiscoveryOptions options;
  options.checkpoint_path = path;
  auto result = DiscoverAllTinds(*index_, params, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->resumed_queries, 0u);
  EXPECT_EQ(result->pairs, baseline.pairs);
  std::remove(path.c_str());
}

TEST_F(DiscoveryTest, ParallelWithOptionsMatchesSequential) {
  ThreadPool pool(4);
  const TindParams params{3.0, 2, weight_.get()};
  const AllPairsResult baseline = DiscoverAllTinds(*index_, params, nullptr);
  DiscoveryOptions options;
  options.pool = &pool;
  options.checkpoint_path = ::testing::TempDir() + "disc-par-ckpt";
  options.checkpoint_interval = 8;
  auto result = DiscoverAllTinds(*index_, params, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->pairs, baseline.pairs);
}

#if !TIND_FAULT_INJECTION_DISABLED
TEST_F(DiscoveryTest, InjectedPreemptionThenResumeMatchesBaseline) {
  const TindParams params{3.0, 2, weight_.get()};
  const AllPairsResult baseline = DiscoverAllTinds(*index_, params, nullptr);
  const std::string path = ::testing::TempDir() + "disc-preempt-ckpt";
  std::remove(path.c_str());

  ASSERT_TRUE(
      FaultInjector::Global().Configure("discovery/preempt=0.2", 5).ok());
  DiscoveryOptions options;
  options.checkpoint_path = path;
  options.checkpoint_interval = 4;
  auto preempted = DiscoverAllTinds(*index_, params, options);
  const uint64_t fired = FaultInjector::Global().fired("discovery/preempt");
  FaultInjector::Global().Reset();
  ASSERT_GT(fired, 0u) << "seed never fired; pick another";
  ASSERT_FALSE(preempted.ok());
  EXPECT_TRUE(preempted.status().IsCancelled())
      << preempted.status().ToString();

  auto resumed = DiscoverAllTinds(*index_, params, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->pairs, baseline.pairs);
  std::remove(path.c_str());
}
#endif  // !TIND_FAULT_INJECTION_DISABLED

#if !TIND_FAULT_INJECTION_DISABLED
TEST_F(DiscoveryTest, CheckpointWriteRetriesRideOutTransientFaults) {
  const TindParams params{3.0, 2, weight_.get()};
  const std::string path = ::testing::TempDir() + "disc-retry-ckpt";
  std::remove(path.c_str());

  // Fail ~35% of checkpoint writes. With backoff retries (3 per write) a
  // transient fault is retried through, so no write is recorded as failed.
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("discovery/checkpoint_write=0.35", 11)
                  .ok());
  DiscoveryOptions options;
  options.checkpoint_path = path;
  options.checkpoint_interval = 2;
  options.checkpoint_retries = 8;  // 0.35^8: a full exhaustion is ~1e-4.
  auto result = DiscoverAllTinds(*index_, params, options);
  const uint64_t fired =
      FaultInjector::Global().fired("discovery/checkpoint_write");
  FaultInjector::Global().Reset();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(fired, 0u) << "seed never fired; pick another";
  EXPECT_EQ(result->checkpoint_failures, 0u);
  EXPECT_GT(result->checkpoints_written, 0u);

  // Same faults without retries must record failures: proves the retries —
  // not luck — absorbed them above.
  std::remove(path.c_str());
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("discovery/checkpoint_write=0.35", 11)
                  .ok());
  options.checkpoint_retries = 0;
  auto no_retry = DiscoverAllTinds(*index_, params, options);
  FaultInjector::Global().Reset();
  ASSERT_TRUE(no_retry.ok()) << no_retry.status().ToString();
  EXPECT_GT(no_retry->checkpoint_failures, 0u);
  std::remove(path.c_str());
}
#endif  // !TIND_FAULT_INJECTION_DISABLED

TEST(CheckpointTest, SaveLoadRoundTrip) {
  DiscoveryCheckpoint checkpoint;
  checkpoint.num_queries = 10;
  checkpoint.completed.emplace_back(0, std::vector<AttributeId>{1, 2, 3});
  checkpoint.completed.emplace_back(4, std::vector<AttributeId>{});
  checkpoint.completed.emplace_back(9, std::vector<AttributeId>{0});
  const std::string path = ::testing::TempDir() + "ckpt-roundtrip";
  ASSERT_TRUE(SaveDiscoveryCheckpoint(checkpoint, path).ok());
  auto loaded = LoadDiscoveryCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_queries, checkpoint.num_queries);
  EXPECT_EQ(loaded->completed, checkpoint.completed);
  RemoveDiscoveryCheckpoint(path);
  EXPECT_TRUE(LoadDiscoveryCheckpoint(path).status().IsNotFound());
}

TEST(CheckpointTest, DetectsTruncationAndBitRot) {
  DiscoveryCheckpoint checkpoint;
  checkpoint.num_queries = 5;
  checkpoint.completed.emplace_back(1, std::vector<AttributeId>{2, 3});
  const std::string path = ::testing::TempDir() + "ckpt-corrupt";
  ASSERT_TRUE(SaveDiscoveryCheckpoint(checkpoint, path).ok());
  std::string contents;
  {
    std::ifstream in(path);
    std::getline(in, contents, '\0');
  }
  {  // Drop the footer: truncation.
    std::ofstream out(path, std::ios::trunc);
    out << contents.substr(0, contents.find("footer"));
  }
  auto truncated = LoadDiscoveryCheckpoint(path);
  EXPECT_FALSE(truncated.ok());
  EXPECT_TRUE(truncated.status().IsIOError());
  {  // Flip one payload byte: CRC mismatch.
    std::string tampered = contents;
    tampered[tampered.find("Q 1") + 2] = '2';
    std::ofstream out(path, std::ios::trunc);
    out << tampered;
  }
  auto tampered = LoadDiscoveryCheckpoint(path);
  EXPECT_FALSE(tampered.ok());
  std::remove(path.c_str());
}

TEST(TindPairTest, Ordering) {
  EXPECT_TRUE((TindPair{1, 2}) < (TindPair{1, 3}));
  EXPECT_TRUE((TindPair{1, 9}) < (TindPair{2, 0}));
  EXPECT_TRUE((TindPair{1, 2}) == (TindPair{1, 2}));
  EXPECT_FALSE((TindPair{1, 2}) == (TindPair{2, 1}));
}

}  // namespace
}  // namespace tind
