#include "tind/discovery.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"
#include "tind/validator.h"

namespace tind {
namespace {

class DiscoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(17);
    dataset_ = Dataset(TimeDomain(90), std::make_shared<ValueDictionary>());
    for (size_t i = 0; i < 35; ++i) {
      dataset_.Add(testutil::RandomHistory(dataset_.domain(), &rng, 12,
                                           static_cast<AttributeId>(i), 5, 5));
    }
    weight_ = std::make_unique<ConstantWeight>(90);
    TindIndexOptions opts;
    opts.bloom_bits = 512;
    opts.num_hashes = 2;
    opts.num_slices = 4;
    opts.delta = 4;
    opts.epsilon = 3.0;
    opts.weight = weight_.get();
    auto index = TindIndex::Build(dataset_, opts);
    ASSERT_TRUE(index.ok());
    index_ = std::move(*index);
  }

  std::set<TindPair> NaiveAllPairs(const TindParams& params) const {
    std::set<TindPair> expected;
    for (AttributeId a = 0; a < dataset_.size(); ++a) {
      for (AttributeId b = 0; b < dataset_.size(); ++b) {
        if (a == b) continue;
        if (ValidateTindNaive(dataset_.attribute(a), dataset_.attribute(b),
                              params, dataset_.domain())) {
          expected.insert(TindPair{a, b});
        }
      }
    }
    return expected;
  }

  Dataset dataset_;
  std::unique_ptr<ConstantWeight> weight_;
  std::unique_ptr<TindIndex> index_;
};

TEST_F(DiscoveryTest, SequentialMatchesNaive) {
  const TindParams params{3.0, 2, weight_.get()};
  const AllPairsResult result = DiscoverAllTinds(*index_, params, nullptr);
  const std::set<TindPair> expected = NaiveAllPairs(params);
  EXPECT_EQ(std::set<TindPair>(result.pairs.begin(), result.pairs.end()),
            expected);
  EXPECT_EQ(result.num_queries, dataset_.size());
  EXPECT_GE(result.elapsed_seconds, 0.0);
}

TEST_F(DiscoveryTest, ParallelMatchesSequential) {
  ThreadPool pool(4);
  const TindParams params{3.0, 2, weight_.get()};
  const AllPairsResult serial = DiscoverAllTinds(*index_, params, nullptr);
  const AllPairsResult parallel = DiscoverAllTinds(*index_, params, &pool);
  EXPECT_EQ(serial.pairs, parallel.pairs);
}

TEST_F(DiscoveryTest, PairsSortedAndUnique) {
  const TindParams params{3.0, 2, weight_.get()};
  const AllPairsResult result = DiscoverAllTinds(*index_, params, nullptr);
  for (size_t i = 1; i < result.pairs.size(); ++i) {
    EXPECT_TRUE(result.pairs[i - 1] < result.pairs[i]);
  }
}

TEST_F(DiscoveryTest, NoSelfPairs) {
  const TindParams params{90.0, 4, weight_.get()};  // Everything included.
  const AllPairsResult result = DiscoverAllTinds(*index_, params, nullptr);
  for (const TindPair& p : result.pairs) EXPECT_NE(p.lhs, p.rhs);
  // With eps = total weight, every ordered pair holds.
  EXPECT_EQ(result.pairs.size(), dataset_.size() * (dataset_.size() - 1));
}

TEST_F(DiscoveryTest, StrictSubsetOfRelaxed) {
  const TindParams strict{0.0, 0, weight_.get()};
  const TindParams relaxed{3.0, 2, weight_.get()};
  const AllPairsResult s = DiscoverAllTinds(*index_, strict, nullptr);
  const AllPairsResult r = DiscoverAllTinds(*index_, relaxed, nullptr);
  const std::set<TindPair> relaxed_set(r.pairs.begin(), r.pairs.end());
  for (const TindPair& p : s.pairs) {
    EXPECT_TRUE(relaxed_set.count(p)) << p.lhs << " in " << p.rhs;
  }
}

TEST(TindPairTest, Ordering) {
  EXPECT_TRUE((TindPair{1, 2}) < (TindPair{1, 3}));
  EXPECT_TRUE((TindPair{1, 9}) < (TindPair{2, 0}));
  EXPECT_TRUE((TindPair{1, 2}) == (TindPair{1, 2}));
  EXPECT_FALSE((TindPair{1, 2}) == (TindPair{2, 1}));
}

}  // namespace
}  // namespace tind
