#include "wiki/preprocess.h"

#include <gtest/gtest.h>

namespace tind::wiki {
namespace {

/// Builds a one-column table history from (minute, values) observations.
RawTableHistory OneColumnTable(
    const std::string& page, const std::string& header,
    const std::vector<std::pair<int64_t, std::vector<std::string>>>& revs) {
  RawTableHistory table;
  table.page_title = page;
  table.table_caption = "t";
  for (const auto& [minute, values] : revs) {
    RawTableVersion v;
    v.revision_minute = minute;
    v.headers = {header};
    v.columns = {values};
    table.versions.push_back(std::move(v));
  }
  return table;
}

/// Default options relaxed so tiny test tables survive the corpus filters.
PreprocessOptions Lenient() {
  PreprocessOptions opts;
  opts.min_versions = 1;
  opts.min_median_cardinality = 1;
  return opts;
}

int64_t Morning(int64_t day) { return day * kMinutesPerDay + 8 * 60; }
int64_t Evening(int64_t day) { return day * kMinutesPerDay + 22 * 60; }

TEST(PreprocessTest, SingleColumnBasicFlow) {
  RawCorpus corpus;
  corpus.num_days = 30;
  corpus.tables.push_back(OneColumnTable(
      "P", "Name",
      {{Morning(0), {"a", "b"}}, {Morning(10), {"a", "b", "c"}}}));
  auto result = PreprocessRawCorpus(corpus, Lenient());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->dataset.size(), 1u);
  const AttributeHistory& h = result->dataset.attribute(0);
  EXPECT_EQ(h.num_versions(), 2u);
  EXPECT_EQ(h.birth(), 0);
  EXPECT_EQ(h.change_timestamps()[1], 10);
  EXPECT_EQ(h.VersionAt(5).size(), 2u);
  EXPECT_EQ(h.VersionAt(15).size(), 3u);
  EXPECT_EQ(result->attribute_names[0], "P/t/Name");
}

TEST(PreprocessTest, LinkResolutionUnifiesRepresentations) {
  RawCorpus corpus;
  corpus.num_days = 10;
  corpus.tables.push_back(OneColumnTable(
      "P", "C", {{Morning(0), {"[[United States|USA]]", "[[Germany]]"}}}));
  auto result = PreprocessRawCorpus(corpus, Lenient());
  ASSERT_TRUE(result.ok());
  const auto& dict = result->dataset.dictionary();
  EXPECT_NE(dict.Lookup("United States"), kInvalidValueId);
  EXPECT_NE(dict.Lookup("Germany"), kInvalidValueId);
  EXPECT_EQ(dict.Lookup("USA"), kInvalidValueId);
}

TEST(PreprocessTest, NullsDropped) {
  RawCorpus corpus;
  corpus.num_days = 10;
  corpus.tables.push_back(OneColumnTable(
      "P", "C", {{Morning(0), {"a", "-", "n/a", "", "b"}}}));
  auto result = PreprocessRawCorpus(corpus, Lenient());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.attribute(0).VersionAt(0).size(), 2u);
}

TEST(PreprocessTest, DailyAggregationPicksLongestValid) {
  RawCorpus corpus;
  corpus.num_days = 10;
  // Day 3: vandalized at 12:00, reverted at 12:10 — the pre-vandal version
  // holds the rest of the day and must win.
  corpus.tables.push_back(OneColumnTable(
      "P", "C",
      {{Morning(0), {"a", "b"}},
       {3 * kMinutesPerDay + 12 * 60, {"a", "b", "VANDAL"}},
       {3 * kMinutesPerDay + 12 * 60 + 10, {"a", "b"}}}));
  auto result = PreprocessRawCorpus(corpus, Lenient());
  ASSERT_TRUE(result.ok());
  const AttributeHistory& h = result->dataset.attribute(0);
  EXPECT_EQ(h.num_versions(), 1u);  // Vandalism never surfaces.
  EXPECT_EQ(result->dataset.dictionary().Lookup("VANDAL"), kInvalidValueId);
}

TEST(PreprocessTest, LateRevisionLandsNextDay) {
  RawCorpus corpus;
  corpus.num_days = 10;
  // Change at 22:00 of day 2: old version was valid 22h that day, so day 2
  // keeps the old version and the new one takes over from day 3.
  corpus.tables.push_back(OneColumnTable(
      "P", "C", {{Morning(0), {"a"}}, {Evening(2), {"z"}}}));
  auto result = PreprocessRawCorpus(corpus, Lenient());
  ASSERT_TRUE(result.ok());
  const AttributeHistory& h = result->dataset.attribute(0);
  ASSERT_EQ(h.num_versions(), 2u);
  EXPECT_EQ(h.change_timestamps()[1], 3);
  const ValueId a = result->dataset.dictionary().Lookup("a");
  EXPECT_TRUE(h.VersionAt(2).Contains(a));
}

TEST(PreprocessTest, EarlyRevisionLandsSameDay) {
  RawCorpus corpus;
  corpus.num_days = 10;
  corpus.tables.push_back(OneColumnTable(
      "P", "C", {{Morning(0), {"a"}}, {2 * kMinutesPerDay + 30, {"z"}}}));
  auto result = PreprocessRawCorpus(corpus, Lenient());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.attribute(0).change_timestamps()[1], 2);
}

TEST(PreprocessTest, NumericColumnsFiltered) {
  RawCorpus corpus;
  corpus.num_days = 10;
  RawTableHistory table;
  table.page_title = "P";
  table.table_caption = "t";
  RawTableVersion v;
  v.revision_minute = Morning(0);
  v.headers = {"Name", "Year"};
  v.columns = {{"a", "b"}, {"1996", "1999"}};
  table.versions.push_back(v);
  corpus.tables.push_back(table);
  auto result = PreprocessRawCorpus(corpus, Lenient());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.size(), 1u);
  EXPECT_EQ(result->stats.dropped_numeric, 1u);
  EXPECT_EQ(result->dataset.attribute(0).meta().column, "Name");
}

TEST(PreprocessTest, MinVersionFilter) {
  RawCorpus corpus;
  corpus.num_days = 50;
  corpus.tables.push_back(OneColumnTable(
      "P", "C",
      {{Morning(0), {"a"}}, {Morning(10), {"b"}}, {Morning(20), {"c"}}}));
  PreprocessOptions opts;
  opts.min_versions = 5;  // Paper default; this table has only 3.
  opts.min_median_cardinality = 1;
  auto result = PreprocessRawCorpus(corpus, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.size(), 0u);
  EXPECT_EQ(result->stats.dropped_few_versions, 1u);
}

TEST(PreprocessTest, MedianCardinalityFilter) {
  RawCorpus corpus;
  corpus.num_days = 50;
  corpus.tables.push_back(OneColumnTable(
      "P", "C", {{Morning(0), {"a", "b"}}, {Morning(10), {"a", "c"}}}));
  PreprocessOptions opts;
  opts.min_versions = 1;
  opts.min_median_cardinality = 5;  // Paper default; median here is 2.
  auto result = PreprocessRawCorpus(corpus, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.size(), 0u);
  EXPECT_EQ(result->stats.dropped_small_cardinality, 1u);
}

TEST(PreprocessTest, ColumnRenameTracedThroughValues) {
  RawCorpus corpus;
  corpus.num_days = 30;
  RawTableHistory table;
  table.page_title = "P";
  table.table_caption = "t";
  RawTableVersion v1;
  v1.revision_minute = Morning(0);
  v1.headers = {"Name"};
  v1.columns = {{"alpha", "beta", "gamma"}};
  RawTableVersion v2;
  v2.revision_minute = Morning(10);
  v2.headers = {"Title"};  // Renamed; values overlap strongly.
  v2.columns = {{"alpha", "beta", "gamma", "delta"}};
  table.versions = {v1, v2};
  corpus.tables.push_back(table);
  auto result = PreprocessRawCorpus(corpus, Lenient());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->dataset.size(), 1u);  // One chain, not two.
  EXPECT_EQ(result->dataset.attribute(0).num_versions(), 2u);
  EXPECT_EQ(result->stats.column_chains, 1u);
}

TEST(PreprocessTest, ColumnDeletionRecorded) {
  RawCorpus corpus;
  corpus.num_days = 30;
  RawTableHistory table;
  table.page_title = "P";
  table.table_caption = "t";
  RawTableVersion v1;
  v1.revision_minute = Morning(0);
  v1.headers = {"Keep", "Drop"};
  v1.columns = {{"a", "b"}, {"x", "y"}};
  RawTableVersion v2;
  v2.revision_minute = Morning(10);
  v2.headers = {"Keep"};
  v2.columns = {{"a", "b"}};
  table.versions = {v1, v2};
  corpus.tables.push_back(table);
  auto result = PreprocessRawCorpus(corpus, Lenient());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->dataset.size(), 2u);
  // The dropped column has an empty version from day 10 on.
  const AttributeHistory* dropped = nullptr;
  for (const auto& attr : result->dataset.attributes()) {
    if (attr.meta().column == "Drop") dropped = &attr;
  }
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->num_versions(), 2u);
  EXPECT_TRUE(dropped->VersionAt(15).empty());
  EXPECT_EQ(dropped->VersionAt(5).size(), 2u);
}

TEST(PreprocessTest, EmptyCorpusRejected) {
  RawCorpus corpus;
  corpus.num_days = 0;
  EXPECT_TRUE(PreprocessRawCorpus(corpus, Lenient()).status().IsInvalidArgument());
}

TEST(PreprocessTest, StatsAccounting) {
  RawCorpus corpus;
  corpus.num_days = 20;
  corpus.tables.push_back(OneColumnTable("P1", "C", {{Morning(0), {"a", "b"}}}));
  corpus.tables.push_back(OneColumnTable("P2", "C", {{Morning(1), {"1", "2"}}}));
  auto result = PreprocessRawCorpus(corpus, Lenient());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.tables, 2u);
  EXPECT_EQ(result->stats.revisions, 2u);
  EXPECT_EQ(result->stats.column_chains, 2u);
  EXPECT_EQ(result->stats.dropped_numeric, 1u);
  EXPECT_EQ(result->stats.kept, 1u);
}

}  // namespace
}  // namespace tind::wiki
