#include "tind/required_values.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "temporal/weights.h"

namespace tind {
namespace {

using testutil::MakeHistory;

TEST(RequiredValuesTest, AllValuesRequiredAtEpsilonZero) {
  const TimeDomain domain(10);
  const ConstantWeight w(10);
  // Value 1 present days 0-9, value 2 present days 5-9.
  const auto h = MakeHistory(domain, {{0, ValueSet{1}}, {5, ValueSet{1, 2}}});
  const ValueSet r = ComputeRequiredValues(h, w, 0.0);
  EXPECT_EQ(r, (ValueSet{1, 2}));
}

TEST(RequiredValuesTest, ShortLivedValuesNotRequired) {
  const TimeDomain domain(100);
  const ConstantWeight w(100);
  // Value 2 present only for days 50..52 (3 days of weight).
  const auto h = MakeHistory(
      domain, {{0, ValueSet{1}}, {50, ValueSet{1, 2}}, {53, ValueSet{1}}});
  EXPECT_EQ(ComputeRequiredValues(h, w, 3.0), (ValueSet{1}));
  EXPECT_EQ(ComputeRequiredValues(h, w, 2.9), (ValueSet{1, 2}));
}

TEST(RequiredValuesTest, ThresholdIsStrict) {
  const TimeDomain domain(10);
  const ConstantWeight w(10);
  // Value 7 present exactly 3 days (5,6,7).
  const auto h = MakeHistory(
      domain, {{0, ValueSet{1}}, {5, ValueSet{1, 7}}, {8, ValueSet{1}}});
  // w_v == 3 is NOT > 3, so not required at eps = 3.
  const ValueSet r3 = ComputeRequiredValues(h, w, 3.0);
  EXPECT_FALSE(r3.Contains(7));
  EXPECT_TRUE(r3.Contains(1));
}

TEST(RequiredValuesTest, NonContiguousOccurrencesAccumulate) {
  const TimeDomain domain(20);
  const ConstantWeight w(20);
  // Value 9: days 2-3 (2 days) and days 10-12 (3 days) -> 5 total.
  const auto h = MakeHistory(domain, {{0, ValueSet{1}},
                                      {2, ValueSet{1, 9}},
                                      {4, ValueSet{1}},
                                      {10, ValueSet{1, 9}},
                                      {13, ValueSet{1}}});
  EXPECT_TRUE(ComputeRequiredValues(h, w, 4.9).Contains(9));
  EXPECT_FALSE(ComputeRequiredValues(h, w, 5.0).Contains(9));
}

TEST(RequiredValuesTest, HugeEpsilonRequiresNothing) {
  const TimeDomain domain(10);
  const ConstantWeight w(10);
  const auto h = MakeHistory(domain, {{0, ValueSet{1, 2, 3}}});
  EXPECT_TRUE(ComputeRequiredValues(h, w, 1000).empty());
}

TEST(RequiredValuesTest, DecayWeightDiscountsOldValues) {
  const int64_t n = 1000;
  const TimeDomain domain(n);
  const ExponentialDecayWeight w(n, 0.99);
  // Value 5: present days 0..99 only (ancient). Value 6: days 900..999.
  const auto h = MakeHistory(
      domain,
      {{0, ValueSet{1, 5}}, {100, ValueSet{1}}, {900, ValueSet{1, 6}}});
  const double old_weight = w.Sum(Interval{0, 99});
  const double recent_weight = w.Sum(Interval{900, 999});
  ASSERT_LT(old_weight, 0.01);
  ASSERT_GT(recent_weight, 50.0);
  const ValueSet r = ComputeRequiredValues(h, w, 1.0);
  EXPECT_FALSE(r.Contains(5));  // Ancient presence below budget.
  EXPECT_TRUE(r.Contains(6));
  EXPECT_TRUE(r.Contains(1));
}

TEST(RequiredValuesTest, LateBirthShortensOccupancy) {
  const TimeDomain domain(100);
  const ConstantWeight w(100);
  const auto h = MakeHistory(domain, {{98, ValueSet{4}}});
  // Only 2 days of existence: required iff eps < 2.
  EXPECT_TRUE(ComputeRequiredValues(h, w, 1.9).Contains(4));
  EXPECT_FALSE(ComputeRequiredValues(h, w, 2.0).Contains(4));
}

TEST(RequiredValuesTest, RequiredValuesAreSubsetOfAllValues) {
  Rng rng(5);
  const TimeDomain domain(200);
  const ConstantWeight w(200);
  for (int trial = 0; trial < 30; ++trial) {
    const auto h = testutil::RandomHistory(domain, &rng, 40);
    const ValueSet r = ComputeRequiredValues(h, w, 10.0);
    EXPECT_TRUE(r.IsSubsetOf(h.AllValues()));
  }
}

TEST(RequiredValuesTest, MonotoneInEpsilon) {
  Rng rng(6);
  const TimeDomain domain(150);
  const ConstantWeight w(150);
  for (int trial = 0; trial < 20; ++trial) {
    const auto h = testutil::RandomHistory(domain, &rng, 30);
    const ValueSet r_small = ComputeRequiredValues(h, w, 2.0);
    const ValueSet r_large = ComputeRequiredValues(h, w, 20.0);
    EXPECT_TRUE(r_large.IsSubsetOf(r_small));
  }
}

}  // namespace
}  // namespace tind
