#include "temporal/weights.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

namespace tind {
namespace {

/// Reference: sum weights timestamp by timestamp.
double NaiveSum(const WeightFunction& w, const Interval& i) {
  double sum = 0;
  for (Timestamp t = i.begin; t <= i.end; ++t) sum += w.At(t);
  return sum;
}

TEST(ConstantWeightTest, UnitWeights) {
  const ConstantWeight w(100);
  EXPECT_DOUBLE_EQ(w.At(0), 1.0);
  EXPECT_DOUBLE_EQ(w.At(99), 1.0);
  EXPECT_DOUBLE_EQ(w.Sum(Interval{10, 19}), 10.0);
  EXPECT_DOUBLE_EQ(w.Total(), 100.0);
}

TEST(ConstantWeightTest, ScaledWeights) {
  const ConstantWeight w(10, 0.5);
  EXPECT_DOUBLE_EQ(w.Sum(Interval{0, 9}), 5.0);
}

TEST(ConstantWeightTest, RelativeWeightSumsToOne) {
  const auto w = MakeRelativeWeight(250);
  EXPECT_NEAR(w->Total(), 1.0, 1e-12);
  EXPECT_NEAR(w->At(0), 1.0 / 250, 1e-15);
}

TEST(ConstantWeightTest, ToString) {
  EXPECT_EQ(ConstantWeight(10, 1.0).ToString(), "constant(c=1)");
}

TEST(ExponentialDecayWeightTest, MostRecentHasWeightOne) {
  const ExponentialDecayWeight w(100, 0.9);
  EXPECT_NEAR(w.At(99), 1.0, 1e-12);
  EXPECT_NEAR(w.At(98), 0.9, 1e-12);
  EXPECT_NEAR(w.At(0), std::pow(0.9, 99), 1e-12);
}

TEST(ExponentialDecayWeightTest, ClosedFormMatchesNaive) {
  const ExponentialDecayWeight w(200, 0.97);
  for (const auto& i :
       {Interval{0, 199}, Interval{0, 0}, Interval{199, 199}, Interval{50, 120},
        Interval{0, 1}, Interval{198, 199}}) {
    EXPECT_NEAR(w.Sum(i), NaiveSum(w, i), 1e-9) << i.ToString();
  }
}

TEST(ExponentialDecayWeightTest, TotalIsGeometricSeries) {
  const ExponentialDecayWeight w(50, 0.5);
  // Σ_{k=0}^{49} 0.5^k = 2 - 2^-49.
  EXPECT_NEAR(w.Total(), 2.0, 1e-9);
}

TEST(ExponentialDecayWeightTest, DecayMakesPastCheap) {
  const ExponentialDecayWeight w(1000, 0.99);
  // A 10-day violation long ago weighs much less than a recent one.
  const double past = w.Sum(Interval{0, 9});
  const double recent = w.Sum(Interval{990, 999});
  EXPECT_LT(past, recent * 0.01);
}

TEST(LinearDecayWeightTest, WeightsGrowTowardPresent) {
  const LinearDecayWeight w(10);
  EXPECT_NEAR(w.At(0), 0.1, 1e-12);
  EXPECT_NEAR(w.At(9), 1.0, 1e-12);
  EXPECT_LT(w.At(3), w.At(7));
}

TEST(LinearDecayWeightTest, ClosedFormMatchesNaive) {
  const LinearDecayWeight w(77);
  for (const auto& i :
       {Interval{0, 76}, Interval{0, 0}, Interval{76, 76}, Interval{10, 30}}) {
    EXPECT_NEAR(w.Sum(i), NaiveSum(w, i), 1e-9) << i.ToString();
  }
}

TEST(PiecewiseConstantWeightTest, SegmentsApply) {
  // Ignore the first 10 days entirely, weight 1 afterwards — the "known
  // data quality period" use-case of Section 3.3.
  const PiecewiseConstantWeight w({{Interval{0, 9}, 0.0},
                                   {Interval{10, 19}, 1.0},
                                   {Interval{20, 29}, 2.0}});
  EXPECT_DOUBLE_EQ(w.At(5), 0.0);
  EXPECT_DOUBLE_EQ(w.At(10), 1.0);
  EXPECT_DOUBLE_EQ(w.At(19), 1.0);
  EXPECT_DOUBLE_EQ(w.At(25), 2.0);
}

TEST(PiecewiseConstantWeightTest, SumsAcrossSegments) {
  const PiecewiseConstantWeight w({{Interval{0, 9}, 0.0},
                                   {Interval{10, 19}, 1.0},
                                   {Interval{20, 29}, 2.0}});
  EXPECT_DOUBLE_EQ(w.Sum(Interval{0, 29}), 30.0);
  EXPECT_DOUBLE_EQ(w.Sum(Interval{5, 14}), 5.0);
  EXPECT_DOUBLE_EQ(w.Sum(Interval{15, 24}), 15.0);
  EXPECT_DOUBLE_EQ(w.Total(), 30.0);
}

TEST(PiecewiseConstantWeightTest, MatchesNaive) {
  const PiecewiseConstantWeight w({{Interval{0, 3}, 0.5},
                                   {Interval{4, 4}, 3.0},
                                   {Interval{5, 19}, 0.25}});
  for (Timestamp b = 0; b < 20; ++b) {
    for (Timestamp e = b; e < 20; ++e) {
      EXPECT_NEAR(w.Sum(Interval{b, e}), NaiveSum(w, Interval{b, e}), 1e-12);
    }
  }
}

/// Parameterized consistency sweep: every built-in weight function must
/// satisfy Sum == Σ At over arbitrary intervals.
class WeightConsistencyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WeightConsistencyTest, SumMatchesNaive) {
  const auto [which, begin, len] = GetParam();
  const int64_t n = 120;
  std::unique_ptr<WeightFunction> w;
  switch (which) {
    case 0:
      w = std::make_unique<ConstantWeight>(n);
      break;
    case 1:
      w = std::make_unique<ExponentialDecayWeight>(n, 0.95);
      break;
    case 2:
      w = std::make_unique<LinearDecayWeight>(n);
      break;
    case 3:
      w = MakeRelativeWeight(n);
      break;
    default:
      w = std::make_unique<ExponentialDecayWeight>(n, 0.999);
  }
  const Interval i{begin, std::min<Timestamp>(begin + len, n - 1)};
  EXPECT_NEAR(w->Sum(i), NaiveSum(*w, i), 1e-9)
      << w->ToString() << " over " << i.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllWeights, WeightConsistencyTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(0, 1, 37, 119),
                       ::testing::Values(0, 1, 13, 80)));

}  // namespace
}  // namespace tind
