#include "temporal/value_set.h"

#include <gtest/gtest.h>

#include "temporal/value_dictionary.h"

namespace tind {
namespace {

TEST(ValueDictionaryTest, InternAssignsDenseIds) {
  ValueDictionary dict;
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.Intern("b"), 1u);
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(ValueDictionaryTest, GetStringRoundTrips) {
  ValueDictionary dict;
  const ValueId id = dict.Intern("Pokémon Red");
  EXPECT_EQ(dict.GetString(id), "Pokémon Red");
}

TEST(ValueDictionaryTest, LookupWithoutIntern) {
  ValueDictionary dict;
  dict.Intern("x");
  EXPECT_EQ(dict.Lookup("x"), 0u);
  EXPECT_EQ(dict.Lookup("y"), kInvalidValueId);
}

TEST(ValueDictionaryTest, EmptyStringIsInternable) {
  ValueDictionary dict;
  EXPECT_EQ(dict.Intern(""), 0u);
  EXPECT_EQ(dict.Lookup(""), 0u);
}

TEST(ValueDictionaryTest, MemoryUsageGrows) {
  ValueDictionary dict;
  const size_t before = dict.MemoryUsageBytes();
  for (int i = 0; i < 100; ++i) dict.Intern("value " + std::to_string(i));
  EXPECT_GT(dict.MemoryUsageBytes(), before);
}

TEST(ValueSetTest, FromUnsortedSortsAndDedupes) {
  const ValueSet s = ValueSet::FromUnsorted({5, 1, 3, 1, 5});
  EXPECT_EQ(s.values(), (std::vector<ValueId>{1, 3, 5}));
  EXPECT_EQ(s.size(), 3u);
}

TEST(ValueSetTest, InitializerList) {
  const ValueSet s{4, 2, 2};
  EXPECT_EQ(s.values(), (std::vector<ValueId>{2, 4}));
}

TEST(ValueSetTest, EmptySet) {
  const ValueSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(&ValueSet::Empty(), &ValueSet::Empty());
  EXPECT_TRUE(ValueSet::Empty().empty());
}

TEST(ValueSetTest, Contains) {
  const ValueSet s{1, 5, 9};
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
}

TEST(ValueSetTest, SubsetRules) {
  const ValueSet small{1, 3};
  const ValueSet big{1, 2, 3, 4};
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_TRUE(ValueSet().IsSubsetOf(small));
  EXPECT_TRUE(ValueSet().IsSubsetOf(ValueSet()));
  EXPECT_FALSE(small.IsSubsetOf(ValueSet()));
}

TEST(ValueSetTest, SubsetEarlySizeReject) {
  const ValueSet a{1, 2, 3};
  const ValueSet b{1, 2};
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(ValueSetTest, Intersects) {
  EXPECT_TRUE((ValueSet{1, 2}).Intersects(ValueSet{2, 3}));
  EXPECT_FALSE((ValueSet{1, 2}).Intersects(ValueSet{3, 4}));
  EXPECT_FALSE(ValueSet().Intersects(ValueSet{1}));
}

TEST(ValueSetTest, UnionIntersectionDifference) {
  const ValueSet a{1, 2, 3};
  const ValueSet b{3, 4};
  EXPECT_EQ(a.Union(b), (ValueSet{1, 2, 3, 4}));
  EXPECT_EQ(a.Intersection(b), (ValueSet{3}));
  EXPECT_EQ(a.Difference(b), (ValueSet{1, 2}));
  EXPECT_EQ(b.Difference(a), (ValueSet{4}));
}

TEST(ValueSetTest, UnionOfMany) {
  const ValueSet a{1, 2};
  const ValueSet b{2, 3};
  const ValueSet c{9};
  EXPECT_EQ(ValueSet::UnionOf({&a, &b, &c}), (ValueSet{1, 2, 3, 9}));
  EXPECT_EQ(ValueSet::UnionOf({}), ValueSet());
}

TEST(ValueSetTest, EqualityAndToString) {
  ValueDictionary dict;
  const ValueId usa = dict.Intern("USA");
  const ValueId ger = dict.Intern("GER");
  const ValueSet s{usa, ger};
  EXPECT_EQ(s.ToString(dict), "{USA, GER}");
  EXPECT_EQ(s, (ValueSet{ger, usa}));
  EXPECT_NE(s, (ValueSet{usa}));
}

TEST(ValueSetTest, SetAlgebraLaws) {
  const ValueSet a{1, 4, 6, 9};
  const ValueSet b{2, 4, 9};
  // A ∩ B ⊆ A ⊆ A ∪ B.
  EXPECT_TRUE(a.Intersection(b).IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a.Union(b)));
  // (A \ B) ∪ (A ∩ B) == A.
  EXPECT_EQ(a.Difference(b).Union(a.Intersection(b)), a);
}

}  // namespace
}  // namespace tind
