#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "temporal/weights.h"
#include "tind/index.h"
#include "tind/planner.h"
#include "tind/progressive.h"
#include "wiki/generator.h"

/// \file progressive_differential_test.cc
/// Differential proof that staged execution is exact: a SearchCursor
/// stepped to completion must return the same attribute-id list — and the
/// same QueryStats funnel, including the planner-skip flags — as the
/// monolithic Search / ReverseSearch call with the same QueryPlan, across
/// the (ε, δ, w) grid, every available SIMD backend, and every plan
/// (default, skip-slices, skip-recheck, both, planner-chosen). The plan
/// overloads must in turn agree with the default plan on the final result
/// list: skipping a prune stage is sound, it can never change the answer.

namespace tind {
namespace {

/// Everything of a QueryStats except the timing fields (elapsed_ms,
/// *_ms stage attributions) — wall time is the one thing staged execution
/// is allowed to report differently.
void ExpectSameFunnel(const QueryStats& got, const QueryStats& want,
                      const std::string& context) {
  EXPECT_EQ(got.initial_candidates, want.initial_candidates) << context;
  EXPECT_EQ(got.after_slices, want.after_slices) << context;
  EXPECT_EQ(got.after_exact_check, want.after_exact_check) << context;
  EXPECT_EQ(got.num_results, want.num_results) << context;
  EXPECT_EQ(got.validations, want.validations) << context;
  EXPECT_EQ(got.used_slices, want.used_slices) << context;
  EXPECT_EQ(got.used_prefilter, want.used_prefilter) << context;
  EXPECT_EQ(got.cancelled, want.cancelled) << context;
  EXPECT_EQ(got.degraded, want.degraded) << context;
  EXPECT_EQ(got.plan_skipped_slices, want.plan_skipped_slices) << context;
  EXPECT_EQ(got.plan_skipped_recheck, want.plan_skipped_recheck) << context;
}

wiki::GeneratedDataset MakeCorpus(uint64_t seed) {
  wiki::GeneratorOptions gen;
  gen.seed = seed;
  gen.num_days = 150;
  gen.num_families = 3;
  gen.num_noise_attributes = 18;
  gen.num_drifter_attributes = 8;
  gen.num_catchall_attributes = 2;
  gen.shared_vocabulary = 120;
  gen.entities_per_family_pool = 80;
  auto generated = wiki::WikiGenerator(gen).GenerateDataset();
  if (!generated.ok()) std::abort();
  return std::move(*generated);
}

struct GridPoint {
  double epsilon;
  int64_t delta;
  bool decay_weight;
};

constexpr GridPoint kGrid[] = {
    {0.0, 0, false},   // Strict tIND.
    {3.0, 7, false},   // The paper's operating point (within build params).
    {6.0, 10, true},   // Exceeds build ε and δ: slices + M_R unusable.
};

/// The explicit plans under test. The planner-chosen plan is added at
/// runtime per query.
constexpr QueryPlan kPlans[] = {
    {false, false},  // Default: run every stage.
    {true, false},   // Skip slice pruning.
    {false, true},   // Skip the exact recheck.
    {true, true},    // Skip both prunes: straight to validation.
};

class ScopedBackend {
 public:
  explicit ScopedBackend(simd::Backend backend)
      : forced_(simd::ForceBackend(backend)) {}
  ~ScopedBackend() { simd::ClearForcedBackend(); }
  bool forced() const { return forced_; }

 private:
  bool forced_;
};

class ProgressiveDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProgressiveDifferentialTest, CursorMatchesMonolithicExactly) {
  const uint64_t seed = GetParam();
  const wiki::GeneratedDataset corpus = MakeCorpus(seed);
  const Dataset& dataset = corpus.dataset;
  ASSERT_GE(dataset.size(), 8u);
  const int64_t n_days = dataset.domain().num_timestamps();
  const ConstantWeight const_w(n_days);
  const ExponentialDecayWeight decay_w(n_days, 0.98);

  TindIndexOptions opts;
  opts.bloom_bits = 512;
  opts.num_hashes = 2;
  opts.num_slices = 6;
  opts.delta = 7;
  opts.epsilon = 3.0;
  opts.build_reverse_index = true;
  opts.reverse_slices = 2;
  opts.weight = &const_w;
  opts.seed = seed * 13 + 1;
  auto built = TindIndex::Build(dataset, opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const TindIndex& index = **built;
  const CostModelPlanner planner(index);

  ThreadPool pool(3);
  const size_t n_attrs = dataset.size();

  for (const GridPoint& point : kGrid) {
    const WeightFunction* w =
        point.decay_weight ? static_cast<const WeightFunction*>(&decay_w)
                           : &const_w;
    const TindParams params{point.epsilon, point.delta, w};
    for (const bool forward : {true, false}) {
      for (size_t q = 0; q < n_attrs; ++q) {
        const AttributeHistory& query =
            dataset.attribute(static_cast<AttributeId>(q));

        // The default-plan monolithic answer is the ground truth every
        // plan's *result list* must reproduce (prune skips are sound).
        QueryStats default_stats;
        const std::vector<AttributeId> exact =
            forward ? index.Search(query, params, &default_stats)
                    : index.ReverseSearch(query, params, &default_stats);

        for (const QueryPlan& plan : kPlans) {
          const std::string context =
              "seed=" + std::to_string(seed) +
              " eps=" + std::to_string(point.epsilon) +
              " delta=" + std::to_string(point.delta) +
              (forward ? " forward" : " reverse") + " q=" +
              std::to_string(q) + " skip_slices=" +
              std::to_string(plan.skip_slices) + " skip_recheck=" +
              std::to_string(plan.skip_recheck);

          QueryStats mono_stats;
          const std::vector<AttributeId> mono =
              forward ? index.Search(query, params, plan, &mono_stats)
                      : index.ReverseSearch(query, params, plan,
                                            &mono_stats);
          EXPECT_EQ(mono, exact) << context << " (plan changed the answer)";

          SearchCursor::Options cursor_opts;
          cursor_opts.reverse = !forward;
          cursor_opts.plan = plan;
          SearchCursor cursor(index, query, params, cursor_opts);
          EXPECT_EQ(cursor.RunToCompletion(), exact) << context;
          EXPECT_TRUE(cursor.done()) << context;
          ExpectSameFunnel(cursor.stats(), mono_stats, context);

          // Pooled validation must not change anything either.
          SearchCursor::Options pooled_opts = cursor_opts;
          pooled_opts.pool = &pool;
          SearchCursor pooled(index, query, params, pooled_opts);
          EXPECT_EQ(pooled.RunToCompletion(), exact) << context << " pooled";
          ExpectSameFunnel(pooled.stats(), mono_stats, context + " pooled");
        }

        // Planner-chosen plan: whatever it decides, the result list and the
        // funnel agree with the monolithic call under the same plan.
        SearchCursor::Options planned_opts;
        planned_opts.reverse = !forward;
        planned_opts.planner = &planner;
        SearchCursor planned(index, query, params, planned_opts);
        EXPECT_EQ(planned.RunToCompletion(), exact)
            << "planner q=" << q << (forward ? " forward" : " reverse");
        QueryStats planned_mono_stats;
        const std::vector<AttributeId> planned_mono =
            forward ? index.Search(query, params, planned.plan(),
                                   &planned_mono_stats)
                    : index.ReverseSearch(query, params, planned.plan(),
                                          &planned_mono_stats);
        EXPECT_EQ(planned_mono, exact);
        ExpectSameFunnel(planned.stats(), planned_mono_stats,
                         "planner q=" + std::to_string(q));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpora, ProgressiveDifferentialTest,
                         ::testing::Range<uint64_t>(200, 208));

/// Every compiled-in SIMD backend must agree with the scalar reference on
/// the staged pipeline, plans included (the staged stage bodies share the
/// batch kernels' dispatch).
TEST(ProgressiveSimdDifferentialTest, BackendsMatchScalar) {
  const wiki::GeneratedDataset corpus = MakeCorpus(42);
  const Dataset& dataset = corpus.dataset;
  const int64_t n_days = dataset.domain().num_timestamps();
  const ConstantWeight w(n_days);
  TindIndexOptions opts;
  opts.bloom_bits = 512;
  opts.num_hashes = 2;
  opts.num_slices = 6;
  opts.delta = 7;
  opts.epsilon = 3.0;
  opts.build_reverse_index = true;
  opts.reverse_slices = 2;
  opts.weight = &w;
  auto built = TindIndex::Build(dataset, opts);
  ASSERT_TRUE(built.ok());
  const TindIndex& index = **built;
  const TindParams params{3.0, 7, &w};

  // Scalar reference: cursor results + funnels for each query × plan.
  struct Reference {
    std::vector<AttributeId> ids;
    QueryStats stats;
  };
  std::vector<Reference> reference;
  {
    ScopedBackend scalar(simd::Backend::kScalar);
    ASSERT_TRUE(scalar.forced());
    for (size_t q = 0; q < dataset.size(); ++q) {
      for (const QueryPlan& plan : kPlans) {
        for (const bool forward : {true, false}) {
          SearchCursor::Options cursor_opts;
          cursor_opts.reverse = !forward;
          cursor_opts.plan = plan;
          SearchCursor cursor(index,
                              dataset.attribute(static_cast<AttributeId>(q)),
                              params, cursor_opts);
          Reference ref;
          ref.ids = cursor.RunToCompletion();
          ref.stats = cursor.stats();
          reference.push_back(std::move(ref));
        }
      }
    }
  }

  for (const simd::Backend backend : simd::AvailableBackends()) {
    if (backend == simd::Backend::kScalar) continue;
    ScopedBackend forced(backend);
    if (!forced.forced()) continue;  // CPU lacks this backend.
    size_t r = 0;
    for (size_t q = 0; q < dataset.size(); ++q) {
      for (const QueryPlan& plan : kPlans) {
        for (const bool forward : {true, false}) {
          SearchCursor::Options cursor_opts;
          cursor_opts.reverse = !forward;
          cursor_opts.plan = plan;
          SearchCursor cursor(index,
                              dataset.attribute(static_cast<AttributeId>(q)),
                              params, cursor_opts);
          const std::string context =
              std::string("backend=") + std::to_string(int(backend)) +
              " q=" + std::to_string(q) +
              " skip_slices=" + std::to_string(plan.skip_slices) +
              " skip_recheck=" + std::to_string(plan.skip_recheck) +
              (forward ? " forward" : " reverse");
          EXPECT_EQ(cursor.RunToCompletion(), reference[r].ids) << context;
          ExpectSameFunnel(cursor.stats(), reference[r].stats, context);
          ++r;
        }
      }
    }
  }
}

/// Stage-by-stage invariants the monolithic call cannot exhibit: the
/// superset is sound and shrinks monotonically; Abandon keeps it valid.
TEST(ProgressiveCursorTest, SupersetShrinksAndStaysSound) {
  const wiki::GeneratedDataset corpus = MakeCorpus(9);
  const Dataset& dataset = corpus.dataset;
  const int64_t n_days = dataset.domain().num_timestamps();
  const ConstantWeight w(n_days);
  TindIndexOptions opts;
  opts.bloom_bits = 512;
  opts.num_hashes = 2;
  opts.num_slices = 6;
  opts.delta = 7;
  opts.epsilon = 3.0;
  opts.weight = &w;
  auto built = TindIndex::Build(dataset, opts);
  ASSERT_TRUE(built.ok());
  const TindIndex& index = **built;
  const TindParams params{3.0, 7, &w};

  auto contains_all = [](const std::vector<AttributeId>& super,
                         const std::vector<AttributeId>& sub) {
    size_t i = 0;
    for (const AttributeId id : sub) {
      while (i < super.size() && super[i] < id) ++i;
      if (i == super.size() || super[i] != id) return false;
    }
    return true;
  };

  for (size_t q = 0; q < dataset.size(); ++q) {
    const AttributeHistory& query =
        dataset.attribute(static_cast<AttributeId>(q));
    const std::vector<AttributeId> exact = index.Search(query, params);

    SearchCursor cursor(index, query, params);
    size_t prev = SIZE_MAX;
    while (!cursor.done()) {
      cursor.Step();
      const std::vector<AttributeId> superset = cursor.Superset();
      EXPECT_LE(superset.size(), prev) << "q=" << q;
      EXPECT_TRUE(contains_all(superset, exact)) << "q=" << q;
      prev = superset.size();
    }
    EXPECT_EQ(cursor.results(), exact) << "q=" << q;

    // Abandon mid-funnel: empty results, cancelled stats, sound superset.
    SearchCursor abandoned(index, query, params);
    abandoned.Step();  // Probe.
    abandoned.Abandon();
    EXPECT_TRUE(abandoned.done());
    EXPECT_TRUE(abandoned.cancelled());
    EXPECT_TRUE(abandoned.results().empty());
    EXPECT_TRUE(contains_all(abandoned.Superset(), exact)) << "q=" << q;
  }
}

/// A pre-fired cancellation token abandons at the first Step; a token fired
/// between stages abandons at the next.
TEST(ProgressiveCursorTest, CancellationAbandonsAtStageBoundary) {
  const wiki::GeneratedDataset corpus = MakeCorpus(5);
  const Dataset& dataset = corpus.dataset;
  const int64_t n_days = dataset.domain().num_timestamps();
  const ConstantWeight w(n_days);
  TindIndexOptions opts;
  opts.bloom_bits = 512;
  opts.num_hashes = 2;
  opts.num_slices = 4;
  opts.weight = &w;
  auto built = TindIndex::Build(dataset, opts);
  ASSERT_TRUE(built.ok());
  const TindIndex& index = **built;
  const TindParams params{3.0, 7, &w};
  const AttributeHistory& query = dataset.attribute(0);

  CancellationToken pre_fired;
  pre_fired.Cancel();
  SearchCursor::Options cursor_opts;
  cursor_opts.cancel = &pre_fired;
  SearchCursor cursor(index, query, params, cursor_opts);
  cursor.Step();
  EXPECT_TRUE(cursor.done());
  EXPECT_TRUE(cursor.cancelled());
  EXPECT_TRUE(cursor.results().empty());

  CancellationToken mid;
  SearchCursor::Options mid_opts;
  mid_opts.cancel = &mid;
  SearchCursor staged(index, query, params, mid_opts);
  EXPECT_EQ(staged.Step(), SearchStage::kSlices);
  mid.Cancel();
  staged.Step();
  EXPECT_TRUE(staged.done());
  EXPECT_TRUE(staged.cancelled());
  EXPECT_TRUE(staged.results().empty());
  EXPECT_GT(staged.Superset().size() + 1, 0u);  // Still answerable.
}

}  // namespace
}  // namespace tind
