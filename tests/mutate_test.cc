/// Validates the seeded corpus mutator (scenario/mutate.h): determinism,
/// always-applicable deltas, op-mix control, and blast-radius bounding.
/// Every live-maintenance harness (the differential test, chaos stage 9,
/// bench_update) trusts these properties instead of re-checking them.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "scenario/mutate.h"
#include "tind/update.h"
#include "wiki/generator.h"

namespace tind {
namespace {

Dataset MakeCorpus(uint64_t seed) {
  wiki::GeneratorOptions gen;
  gen.seed = seed;
  gen.num_days = 100;
  gen.num_families = 2;
  gen.num_noise_attributes = 10;
  gen.num_drifter_attributes = 4;
  gen.num_catchall_attributes = 1;
  gen.shared_vocabulary = 80;
  gen.entities_per_family_pool = 40;
  auto generated = wiki::WikiGenerator(gen).GenerateDataset();
  EXPECT_TRUE(generated.ok());
  return std::move(generated->dataset);
}

bool SameOp(const RevisionOp& a, const RevisionOp& b) {
  return a.kind == b.kind && a.attribute == b.attribute &&
         a.timestamp == b.timestamp && a.values == b.values &&
         a.meta.page == b.meta.page && a.meta.table == b.meta.table &&
         a.meta.column == b.meta.column && a.versions == b.versions;
}

TEST(MutateCorpusTest, SameSeedIsByteIdentical) {
  const Dataset corpus = MakeCorpus(5);
  scenario::MutationSpec spec;
  const RevisionDelta a = scenario::MutateCorpus(corpus, 42, spec);
  const RevisionDelta b = scenario::MutateCorpus(corpus, 42, spec);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_TRUE(SameOp(a.ops[i], b.ops[i])) << "op " << i;
  }
}

TEST(MutateCorpusTest, DifferentSeedsDiverge) {
  const Dataset corpus = MakeCorpus(5);
  scenario::MutationSpec spec;
  const RevisionDelta a = scenario::MutateCorpus(corpus, 1, spec);
  const RevisionDelta b = scenario::MutateCorpus(corpus, 2, spec);
  bool any_difference = a.ops.size() != b.ops.size();
  for (size_t i = 0; !any_difference && i < a.ops.size(); ++i) {
    any_difference = !SameOp(a.ops[i], b.ops[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(MutateCorpusTest, GeneratedDeltasAlwaysApply) {
  const Dataset corpus = MakeCorpus(9);
  scenario::MutationSpec spec;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    const RevisionDelta delta = scenario::MutateCorpus(corpus, seed, spec);
    ASSERT_EQ(delta.ops.size(), spec.num_ops);
    auto applied = ApplyDeltaToDataset(corpus, delta);
    ASSERT_TRUE(applied.ok())
        << "seed " << seed << ": " << applied.status().ToString();
    EXPECT_EQ(applied->versions_appended + applied->attributes_added +
                  applied->attributes_retired,
              spec.num_ops)
        << "seed " << seed;
  }
}

TEST(MutateCorpusTest, ChainedDeltasApplyAgainstTheMutatedCorpus) {
  const Dataset corpus = MakeCorpus(11);
  scenario::MutationSpec spec;
  std::shared_ptr<Dataset> current;
  for (uint64_t step = 0; step < 4; ++step) {
    const Dataset& at = step == 0 ? corpus : *current;
    const RevisionDelta delta = scenario::MutateCorpus(at, 70 + step, spec);
    auto applied = ApplyDeltaToDataset(at, delta);
    ASSERT_TRUE(applied.ok())
        << "step " << step << ": " << applied.status().ToString();
    current = applied->dataset;
  }
  EXPECT_GT(current->size(), corpus.size());
}

TEST(MutateCorpusTest, OpKindWeightsAreRespected) {
  const Dataset corpus = MakeCorpus(13);
  scenario::MutationSpec appends_only;
  appends_only.add_weight = 0;
  appends_only.retire_weight = 0;
  for (const RevisionOp& op :
       scenario::MutateCorpus(corpus, 3, appends_only).ops) {
    EXPECT_EQ(op.kind, RevisionOp::Kind::kAppendVersion);
  }
  scenario::MutationSpec adds_only;
  adds_only.append_weight = 0;
  adds_only.retire_weight = 0;
  for (const RevisionOp& op :
       scenario::MutateCorpus(corpus, 3, adds_only).ops) {
    EXPECT_EQ(op.kind, RevisionOp::Kind::kAddAttribute);
  }
}

TEST(MutateCorpusTest, BlastRadiusIsBounded) {
  const Dataset corpus = MakeCorpus(17);
  scenario::MutationSpec spec;
  spec.num_ops = 64;
  spec.add_weight = 0;  // Adds are new ids, outside the bounded pool.
  spec.max_attributes_touched = 3;
  const RevisionDelta delta = scenario::MutateCorpus(corpus, 8, spec);
  std::set<AttributeId> touched;
  for (const RevisionOp& op : delta.ops) {
    ASSERT_NE(op.kind, RevisionOp::Kind::kAddAttribute);
    touched.insert(op.attribute);
  }
  EXPECT_LE(touched.size(), 3u);
  auto applied = ApplyDeltaToDataset(corpus, delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_LE(applied->dirty.size(), 3u);
}

TEST(MutateCorpusTest, TimestampsStayInsideTheDomain) {
  const Dataset corpus = MakeCorpus(19);
  scenario::MutationSpec spec;
  spec.num_ops = 48;
  const RevisionDelta delta = scenario::MutateCorpus(corpus, 21, spec);
  const Timestamp last = corpus.domain().last();
  for (const RevisionOp& op : delta.ops) {
    if (op.kind == RevisionOp::Kind::kAddAttribute) {
      ASSERT_FALSE(op.versions.empty());
      Timestamp previous = -1;
      for (const auto& [t, values] : op.versions) {
        EXPECT_GE(t, 0);
        EXPECT_LE(t, last);
        EXPECT_GT(t, previous);
        EXPECT_FALSE(values.empty());
        previous = t;
      }
    } else {
      EXPECT_GE(op.timestamp, 0);
      EXPECT_LE(op.timestamp, last);
    }
  }
}

}  // namespace
}  // namespace tind
