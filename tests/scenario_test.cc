#include "scenario/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "scenario/scenario_run.h"
#include "snapshot/snapshot.h"

namespace tind::scenario {
namespace {

/// A small non-default spec that exercises every knob group at once: the
/// round-trip and determinism tests must cover fields the builtins leave at
/// their defaults (batch_weights, adversarial_*, burstiness, floors).
ScenarioSpec FullSpec() {
  ScenarioSpec spec;
  spec.name = "test-full";
  spec.description = "every knob off its default";
  spec.seed = 1234567;
  spec.corpus.attributes = 160;
  spec.corpus.days = 250;
  spec.corpus.zipf_skew = 1.1;
  spec.corpus.burstiness = 0.7;
  spec.corpus.cluster_fraction = 0.4;
  spec.corpus.noise_fraction = 0.3;
  spec.corpus.drifter_fraction = 0.1;
  spec.corpus.adversarial_fraction = 0.1;
  spec.corpus.chain_probability = 0.5;
  spec.corpus.error_rate = 0.03;
  spec.corpus.unlinked_variant_probability = 0.02;
  spec.corpus.adversarial_cardinality = 32;
  spec.corpus.adversarial_churn = 24.0;
  spec.corpus.shared_vocabulary = 200;
  spec.traffic.queries = 96;
  spec.traffic.hot_fraction = 0.8;
  spec.traffic.hot_set_fraction = 0.1;
  spec.traffic.reverse_fraction = 0.4;
  spec.traffic.batch_sizes = {1, 16, 64};
  spec.traffic.batch_weights = {1.0, 2.0, 4.0};
  spec.index.bloom_bits = 1024;
  spec.index.num_slices = 4;
  spec.index.epsilon = 5.0;
  spec.index.delta = 9;
  spec.min_precision = 0.5;
  spec.min_recall = 0.2;
  return spec;
}

TEST(ScenarioSpecTest, RoundTripFullSpec) {
  const ScenarioSpec spec = FullSpec();
  ASSERT_TRUE(ValidateSpec(spec).ok());
  auto back = FromJson(ToJson(spec));
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(*back, spec);
}

TEST(ScenarioSpecTest, RoundTripThroughText) {
  const ScenarioSpec spec = FullSpec();
  const std::string text = ToJson(spec).Dump(2);
  auto back = ParseSpec(text);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(*back, spec);
}

TEST(ScenarioSpecTest, RoundTripAllBuiltins) {
  for (const ScenarioSpec& spec : BuiltinScenarios()) {
    auto back = FromJson(ToJson(spec));
    ASSERT_TRUE(back.ok()) << spec.name << ": " << back.status().message();
    EXPECT_EQ(*back, spec) << spec.name;
  }
}

TEST(ScenarioSpecTest, RoundTripThroughFile) {
  const ScenarioSpec spec = FullSpec();
  const std::string path =
      ::testing::TempDir() + "/scenario_round_trip_spec.json";
  ASSERT_TRUE(WriteSpecFile(spec, path).ok());
  auto back = LoadSpecFile(path);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(*back, spec);
  std::remove(path.c_str());
}

TEST(ScenarioSpecTest, AbsentKeysKeepDefaults) {
  auto spec = ParseSpec(R"({"name": "tiny", "seed": 3})");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  EXPECT_EQ(spec->name, "tiny");
  EXPECT_EQ(spec->seed, 3u);
  EXPECT_EQ(spec->corpus, CorpusSpec{});
  EXPECT_EQ(spec->traffic, TrafficSpec{});
  EXPECT_EQ(spec->index, IndexSpec{});
}

TEST(ScenarioSpecTest, UnknownKeyIsError) {
  auto spec = ParseSpec(R"({"name": "x", "corpus": {"atributes": 100}})");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(spec.status().message().find("atributes"), std::string::npos)
      << spec.status().message();
}

TEST(ScenarioSpecTest, TypeMismatchIsError) {
  auto spec = ParseSpec(R"({"name": "x", "corpus": {"attributes": "many"}})");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScenarioSpecTest, MalformedJsonIsError) {
  EXPECT_FALSE(ParseSpec("{not json").ok());
  EXPECT_FALSE(ParseSpec("[1, 2, 3]").ok());
}

TEST(ScenarioSpecTest, ValidateRejectsBadSpecs) {
  const auto rejects = [](void (*mutate)(ScenarioSpec*)) {
    ScenarioSpec spec = FullSpec();
    mutate(&spec);
    return !ValidateSpec(spec).ok();
  };
  EXPECT_TRUE(rejects([](ScenarioSpec* s) { s->name = ""; }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) { s->name = "bad name!"; }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) { s->corpus.attributes = 5; }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) { s->corpus.days = 3; }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) { s->corpus.burstiness = 1.0; }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) { s->corpus.cluster_fraction = 1.5; }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) {
    s->corpus.cluster_fraction = 0.9;
    s->corpus.noise_fraction = 0.9;  // Mix sums past the slack bound.
  }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) {
    s->corpus.adversarial_fraction = 0.2;
    s->corpus.adversarial_cardinality = 0;
  }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) { s->traffic.queries = 0; }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) { s->traffic.batch_sizes.clear(); }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) { s->traffic.batch_sizes = {0}; }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) {
    s->traffic.batch_weights = {1.0};  // Length mismatch vs batch_sizes.
  }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) {
    s->traffic.hot_fraction = 0.5;
    s->traffic.hot_set_fraction = 0.0;
  }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) { s->index.bloom_bits = 1000; }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) { s->index.num_slices = 0; }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) { s->min_precision = 1.5; }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) {
    s->corpus.cluster_fraction = 0.0;  // Floors need planted truth.
  }));
  EXPECT_TRUE(rejects([](ScenarioSpec* s) {
    s->seed = (1ULL << 53) + 1;  // Outside the JSON-exact integer range.
  }));
}

TEST(ScenarioSpecTest, BuiltinsAreValidAndFindable) {
  const auto& builtins = BuiltinScenarios();
  ASSERT_GE(builtins.size(), 4u);
  std::set<std::string> names;
  for (const ScenarioSpec& spec : builtins) {
    EXPECT_TRUE(ValidateSpec(spec).ok()) << spec.name;
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate " << spec.name;
    const ScenarioSpec* found = FindBuiltinScenario(spec.name);
    ASSERT_NE(found, nullptr) << spec.name;
    EXPECT_EQ(*found, spec);
  }
  EXPECT_TRUE(names.count("planted-clusters"));
  EXPECT_TRUE(names.count("adversarial-bloom"));
  EXPECT_EQ(FindBuiltinScenario("no-such-scenario"), nullptr);
}

TEST(ScenarioSpecTest, ResolveBuiltinThenFileThenNotFound) {
  auto builtin = ResolveScenario("baseline-small");
  ASSERT_TRUE(builtin.ok());
  EXPECT_EQ(builtin->name, "baseline-small");

  const ScenarioSpec spec = FullSpec();
  const std::string path = ::testing::TempDir() + "/scenario_resolve_spec.json";
  ASSERT_TRUE(WriteSpecFile(spec, path).ok());
  auto from_file = ResolveScenario(path);
  ASSERT_TRUE(from_file.ok()) << from_file.status().message();
  EXPECT_EQ(*from_file, spec);
  std::remove(path.c_str());

  auto missing = ResolveScenario("no-such-scenario");
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
  // The error should teach: it lists what *is* available.
  EXPECT_NE(missing.status().message().find("baseline-small"),
            std::string::npos)
      << missing.status().message();
}

/// The committed scenarios/*.json artifacts must stay in lockstep with the
/// builtin registry — CI runs the files, tests gate the registry, and a
/// drifted pair would mean the two validate different workloads. Regenerate
/// with `tind_scenario generate <name> --out=scenarios/<name>.json`
/// (tests/README.md).
TEST(ScenarioSpecTest, CommittedSpecFilesMatchBuiltins) {
  for (const ScenarioSpec& spec : BuiltinScenarios()) {
    const std::string path =
        std::string(TIND_SOURCE_DIR) + "/scenarios/" + spec.name + ".json";
    auto committed = LoadSpecFile(path);
    ASSERT_TRUE(committed.ok()) << path << ": " << committed.status().message();
    EXPECT_EQ(*committed, spec)
        << spec.name << " drifted from its committed spec; regenerate "
        << path;
  }
}

ScenarioSpec SmallCorpusSpec(uint64_t seed = 7) {
  ScenarioSpec spec = FullSpec();
  spec.name = "test-small";
  spec.seed = seed;
  spec.corpus.attributes = 120;
  spec.corpus.days = 200;
  return spec;
}

TEST(ScenarioCorpusTest, MaterializeDeterministicInSeed) {
  // The digest covers every version of every attribute, so equality here is
  // bit-determinism of the whole corpus — including the burstiness and
  // adversarial paths FullSpec turns on.
  auto a = MaterializeCorpus(SmallCorpusSpec(11));
  auto b = MaterializeCorpus(SmallCorpusSpec(11));
  ASSERT_TRUE(a.ok()) << a.status().message();
  ASSERT_TRUE(b.ok()) << b.status().message();
  EXPECT_EQ(snapshot::ComputeCorpusDigest(a->dataset),
            snapshot::ComputeCorpusDigest(b->dataset));
  EXPECT_EQ(a->attribute_names, b->attribute_names);
  EXPECT_EQ(a->ground_truth.pairs(), b->ground_truth.pairs());
}

TEST(ScenarioCorpusTest, MaterializeDiffersAcrossSeeds) {
  auto a = MaterializeCorpus(SmallCorpusSpec(1));
  auto b = MaterializeCorpus(SmallCorpusSpec(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(snapshot::ComputeCorpusDigest(a->dataset),
            snapshot::ComputeCorpusDigest(b->dataset));
}

TEST(ScenarioCorpusTest, KnobsReachTheGenerator) {
  const ScenarioSpec spec = FullSpec();
  const wiki::GeneratorOptions opts = ToGeneratorOptions(spec);
  EXPECT_EQ(opts.seed, spec.seed);
  EXPECT_EQ(opts.num_days, spec.corpus.days);
  EXPECT_EQ(opts.zipf_skew, spec.corpus.zipf_skew);
  EXPECT_EQ(opts.burstiness, spec.corpus.burstiness);
  EXPECT_EQ(opts.chain_probability, spec.corpus.chain_probability);
  EXPECT_EQ(opts.error_rate, spec.corpus.error_rate);
  EXPECT_EQ(opts.adversarial_cardinality, spec.corpus.adversarial_cardinality);
  EXPECT_EQ(opts.adversarial_changes_mean, spec.corpus.adversarial_churn);
  EXPECT_GT(opts.num_families, 0u);
  EXPECT_GT(opts.num_adversarial_attributes, 0u);
  EXPECT_EQ(opts.shared_vocabulary, spec.corpus.shared_vocabulary);
  EXPECT_TRUE(wiki::ValidateGeneratorOptions(opts).ok());

  // Every builtin must also map onto generator options that validate.
  for (const ScenarioSpec& builtin : BuiltinScenarios()) {
    EXPECT_TRUE(wiki::ValidateGeneratorOptions(ToGeneratorOptions(builtin)).ok())
        << builtin.name;
  }
}

TEST(ScenarioTrafficTest, PlanDeterministicInSeed) {
  const ScenarioSpec spec = FullSpec();
  const TrafficPlan a = BuildTrafficPlan(spec, 150);
  const TrafficPlan b = BuildTrafficPlan(spec, 150);
  ASSERT_EQ(a.batches.size(), b.batches.size());
  for (size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i].forward, b.batches[i].forward);
    EXPECT_EQ(a.batches[i].queries, b.batches[i].queries);
  }
  EXPECT_EQ(a.total_queries, b.total_queries);
  EXPECT_EQ(a.hot_set_size, b.hot_set_size);

  ScenarioSpec other = spec;
  other.seed = spec.seed + 1;
  const TrafficPlan c = BuildTrafficPlan(other, 150);
  bool identical = a.batches.size() == c.batches.size();
  for (size_t i = 0; identical && i < a.batches.size(); ++i) {
    identical = a.batches[i].forward == c.batches[i].forward &&
                a.batches[i].queries == c.batches[i].queries;
  }
  EXPECT_FALSE(identical) << "traffic plan ignored the seed";
}

TEST(ScenarioTrafficTest, PlanHonoursTheSpec) {
  ScenarioSpec spec = FullSpec();
  spec.traffic.queries = 500;
  const size_t num_attributes = 200;
  const TrafficPlan plan = BuildTrafficPlan(spec, num_attributes);
  EXPECT_EQ(plan.total_queries, spec.traffic.queries);
  EXPECT_EQ(plan.hot_set_size,
            static_cast<size_t>(num_attributes *
                                spec.traffic.hot_set_fraction));
  size_t counted = 0;
  size_t forward = 0;
  for (const QueryBatch& batch : plan.batches) {
    ASSERT_FALSE(batch.queries.empty());
    // Batch sizes come from the declared mix (the last batch may be trimmed
    // to the remaining query budget).
    const bool in_mix =
        std::find(spec.traffic.batch_sizes.begin(),
                  spec.traffic.batch_sizes.end(),
                  static_cast<int64_t>(batch.queries.size())) !=
        spec.traffic.batch_sizes.end();
    EXPECT_TRUE(in_mix || &batch == &plan.batches.back())
        << "batch of size " << batch.queries.size();
    for (AttributeId id : batch.queries) {
      EXPECT_LT(static_cast<size_t>(id), num_attributes);
    }
    counted += batch.queries.size();
    if (batch.forward) forward += batch.queries.size();
  }
  EXPECT_EQ(counted, plan.total_queries);
  EXPECT_EQ(forward, plan.forward_queries);
  // reverse_fraction = 0.4 over 500 queries: both directions must appear.
  EXPECT_GT(plan.forward_queries, 0u);
  EXPECT_LT(plan.forward_queries, plan.total_queries);
}

TEST(ScenarioTrafficTest, HotTrafficConcentrates) {
  ScenarioSpec spec = FullSpec();
  spec.traffic.queries = 2000;
  spec.traffic.hot_fraction = 1.0;
  spec.traffic.hot_set_fraction = 0.05;
  const size_t num_attributes = 400;
  const TrafficPlan plan = BuildTrafficPlan(spec, num_attributes);
  std::set<AttributeId> distinct;
  for (const QueryBatch& batch : plan.batches) {
    distinct.insert(batch.queries.begin(), batch.queries.end());
  }
  // All traffic is hot, so at most hot_set_size distinct attributes appear.
  EXPECT_LE(distinct.size(), plan.hot_set_size);
  EXPECT_GT(distinct.size(), 0u);
}

/// The property the whole factory exists for: pairs the generator plants as
/// genuine tINDs are recovered by DiscoverAllTinds at lenient ε/δ. Run on a
/// small planted-cluster grid to keep the test in tier-1 time.
TEST(ScenarioDiscoveryTest, PlantedPairsAreRecovered) {
  ScenarioSpec spec;
  spec.name = "test-recovery";
  spec.seed = 29;
  spec.corpus.attributes = 140;
  spec.corpus.days = 300;
  spec.corpus.cluster_fraction = 0.7;
  spec.corpus.noise_fraction = 0.15;
  spec.corpus.drifter_fraction = 0.05;
  spec.corpus.chain_probability = 0.6;
  spec.corpus.error_rate = 0.04;
  spec.corpus.unlinked_variant_probability = 0.0;
  spec.index.bloom_bits = 2048;
  spec.index.epsilon = 6.0;  // Lenient relaxation: planted errors forgiven.
  spec.index.delta = 10;
  spec.min_precision = 0.6;
  spec.min_recall = 0.5;
  ASSERT_TRUE(ValidateSpec(spec).ok());

  ScenarioRunOptions options;
  options.run_traffic = false;
  auto report = RunScenario(spec, options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_GT(report->planted_pairs, 0u);
  EXPECT_GE(report->precision, spec.min_precision)
      << report->true_positives << "/" << report->discovered_pairs;
  EXPECT_GE(report->recall, spec.min_recall)
      << report->true_positives << "/" << report->planted_pairs;
  EXPECT_TRUE(report->floors_ok) << report->floor_failure;

  // The report row is the BENCH_scenarios.json schema; spot-check the keys
  // check_bench_json.py baselines rely on.
  ASSERT_TRUE(report->json.is_object());
  EXPECT_NE(report->json.Find("discovery"), nullptr);
  EXPECT_NE(report->json.Find("floors"), nullptr);
  EXPECT_NE(report->json.FindPath("corpus.digest"), nullptr);
}

TEST(ScenarioDiscoveryTest, RunReportsDeterministicDigest) {
  ScenarioSpec spec = SmallCorpusSpec(31);
  spec.min_precision = 0.0;
  spec.min_recall = 0.0;
  ScenarioRunOptions options;
  options.run_traffic = false;
  options.run_discovery = false;
  auto a = RunScenario(spec, options);
  auto b = RunScenario(spec, options);
  ASSERT_TRUE(a.ok()) << a.status().message();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->corpus_digest, b->corpus_digest);
  EXPECT_NE(a->corpus_digest, 0u);
}

}  // namespace
}  // namespace tind::scenario
