#include <gtest/gtest.h>

#include "eval/buckets.h"
#include "eval/grid_search.h"
#include "eval/precision_recall.h"
#include "eval/runtime_stats.h"
#include "test_util.h"

namespace tind {
namespace {

TEST(RuntimeStatsTest, EmptyStats) {
  RuntimeStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Median(), 0.0);
}

TEST(RuntimeStatsTest, BasicMoments) {
  RuntimeStats s;
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_NEAR(s.StdDev(), std::sqrt(2.5), 1e-12);
}

TEST(RuntimeStatsTest, Percentiles) {
  RuntimeStats s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_NEAR(s.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(95), 95.05, 0.1);
}

TEST(RuntimeStatsTest, FractionBelow) {
  RuntimeStats s;
  for (const double v : {10.0, 20.0, 30.0, 200.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.FractionBelow(100.0), 0.75);
  EXPECT_DOUBLE_EQ(s.FractionBelow(10.0), 0.0);
  EXPECT_DOUBLE_EQ(s.FractionBelow(1000.0), 1.0);
}

TEST(RuntimeStatsTest, SummaryString) {
  RuntimeStats s;
  s.Add(1.0);
  EXPECT_NE(s.Summary().find("n=1"), std::string::npos);
}

TEST(PrecisionRecallTest, PerfectPrediction) {
  const std::set<IdPair> truth{{0, 1}, {2, 3}};
  const std::vector<IdPair> predicted{{0, 1}, {2, 3}};
  const PrecisionRecall pr = ComputePrecisionRecall(predicted, truth);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(pr.F1(), 1.0);
}

TEST(PrecisionRecallTest, PartialPrediction) {
  const std::set<IdPair> truth{{0, 1}, {2, 3}, {4, 5}, {6, 7}};
  const std::vector<IdPair> predicted{{0, 1}, {9, 9}};
  const PrecisionRecall pr = ComputePrecisionRecall(predicted, truth);
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);
  EXPECT_DOUBLE_EQ(pr.recall, 0.25);
  EXPECT_EQ(pr.true_positives, 1u);
}

TEST(PrecisionRecallTest, EmptyPrediction) {
  const std::set<IdPair> truth{{0, 1}};
  const PrecisionRecall pr = ComputePrecisionRecall({}, truth);
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
  EXPECT_DOUBLE_EQ(pr.F1(), 0.0);
}

TEST(PrecisionRecallTest, CandidateUniverseRestriction) {
  const std::set<IdPair> truth{{0, 1}, {2, 3}};
  const std::set<IdPair> universe{{0, 1}, {8, 9}};
  const std::vector<IdPair> predicted{{0, 1}, {2, 3}, {8, 9}};
  const PrecisionRecall pr =
      ComputePrecisionRecall(predicted, truth, &universe);
  // {2,3} is outside the universe: neither predicted nor relevant.
  EXPECT_EQ(pr.predicted, 2u);
  EXPECT_EQ(pr.relevant, 1u);
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(ParetoFrontTest, KeepsOnlyDominantPoints) {
  std::vector<PrPoint> points{
      {0.9, 0.1, "a"}, {0.5, 0.5, "b"}, {0.6, 0.4, "c"},
      {0.2, 0.9, "d"}, {0.1, 0.2, "e"},  // Dominated by b/c.
  };
  const auto front = ParetoFront(points);
  ASSERT_EQ(front.size(), 4u);
  EXPECT_EQ(front[0].label, "a");
  EXPECT_EQ(front[1].label, "c");
  EXPECT_EQ(front[2].label, "b");
  EXPECT_EQ(front[3].label, "d");
  // Ascending recall, descending precision.
  for (size_t i = 1; i < front.size(); ++i) {
    EXPECT_GE(front[i].recall, front[i - 1].recall);
    EXPECT_LE(front[i].precision, front[i - 1].precision);
  }
}

TEST(ParetoFrontTest, EmptyAndSingle) {
  EXPECT_TRUE(ParetoFront({}).empty());
  const auto front = ParetoFront({{0.5, 0.5, "only"}});
  ASSERT_EQ(front.size(), 1u);
}

TEST(BucketsTest, BucketBoundaries) {
  EXPECT_EQ(BucketForChanges(4), ChangeBucket::kLow);
  EXPECT_EQ(BucketForChanges(7), ChangeBucket::kLow);
  EXPECT_EQ(BucketForChanges(8), ChangeBucket::kMid);
  EXPECT_EQ(BucketForChanges(15), ChangeBucket::kMid);
  EXPECT_EQ(BucketForChanges(16), ChangeBucket::kHigh);
  EXPECT_EQ(BucketForChanges(1000), ChangeBucket::kHigh);
  EXPECT_STREQ(ChangeBucketToString(ChangeBucket::kLow), "[4,8)");
  EXPECT_STREQ(ChangeBucketToString(ChangeBucket::kHigh), "[16,inf)");
}

TEST(BucketsTest, TableComputation) {
  // Attribute change counts: id0: 5 changes (6 versions), id1: 10, id2: 20.
  Dataset dataset(TimeDomain(200), std::make_shared<ValueDictionary>());
  const auto add_attr = [&](AttributeId id, size_t changes) {
    AttributeHistoryBuilder b(id, {}, dataset.domain());
    for (size_t v = 0; v <= changes; ++v) {
      EXPECT_TRUE(
          b.AddVersion(static_cast<Timestamp>(v * 3), ValueSet{static_cast<ValueId>(v)})
              .ok());
    }
    dataset.Add(std::move(*b.Finish()));
  };
  add_attr(0, 5);
  add_attr(1, 10);
  add_attr(2, 20);

  const std::vector<IdPair> pairs{{0, 1}, {0, 2}, {1, 2}, {2, 2}};
  const std::set<IdPair> truth{{0, 1}, {2, 2}};
  const auto cells = ComputeBucketTable(dataset, pairs, truth, 100, 7);
  ASSERT_EQ(cells.size(), 9u);
  // Cell (low, mid) = {0,1}: 1 pair, genuine.
  const BucketCell& low_mid = cells[0 * 3 + 1];
  EXPECT_EQ(low_mid.total, 1u);
  EXPECT_EQ(low_mid.genuine, 1u);
  EXPECT_DOUBLE_EQ(low_mid.TpRate(), 1.0);
  // Cell (low, high) = {0,2}: 1 pair, not genuine.
  EXPECT_EQ(cells[0 * 3 + 2].total, 1u);
  EXPECT_EQ(cells[0 * 3 + 2].genuine, 0u);
  // Cell (high, high) = {2,2}: genuine.
  EXPECT_DOUBLE_EQ(cells[2 * 3 + 2].TpRate(), 1.0);
  // Empty cell.
  EXPECT_EQ(cells[1 * 3 + 0].total, 0u);
  EXPECT_EQ(cells[1 * 3 + 0].sampled, 0u);
}

TEST(BucketsTest, SamplingCapsAnnotation) {
  Dataset dataset(TimeDomain(100), std::make_shared<ValueDictionary>());
  AttributeHistoryBuilder b(0, {}, dataset.domain());
  for (int v = 0; v < 6; ++v) {
    EXPECT_TRUE(b.AddVersion(v * 5, ValueSet{static_cast<ValueId>(v)}).ok());
  }
  dataset.Add(std::move(*b.Finish()));
  std::vector<IdPair> pairs;
  for (int i = 0; i < 50; ++i) pairs.push_back({0, 0});
  const auto cells = ComputeBucketTable(dataset, pairs, {}, 10, 3);
  EXPECT_EQ(cells[0].total, 50u);
  EXPECT_EQ(cells[0].sampled, 10u);
}

TEST(GridSearchTest, VariantNames) {
  EXPECT_STREQ(TindVariantToString(TindVariant::kStatic), "static");
  EXPECT_STREQ(TindVariantToString(TindVariant::kStrict), "strict");
  EXPECT_STREQ(TindVariantToString(TindVariant::kWeighted), "w-eps-delta");
}

TEST(GridSearchTest, ClassifiesAndEvaluates) {
  // Dataset: pair (0,1) strictly valid; pair (2,1) violated for 5 days.
  Dataset dataset = testutil::MakeDataset(
      100, {
               {{0, ValueSet{1}}},
               {{0, ValueSet{1, 2, 9}}},
               {{0, ValueSet{2}}, {50, ValueSet{2, 3}}, {55, ValueSet{2}}},
           });
  const std::vector<LabeledPair> labelled{
      {{0, 1}, true},
      {{2, 1}, false},
  };
  GridSearchOptions opts;
  opts.epsilons = {0, 10};
  opts.deltas = {0};
  opts.decay_bases = {1.0};
  const auto points = RunGridSearch(dataset, labelled, opts);
  // 2 eps x 1 delta x 1 base + static = 3 points.
  ASSERT_EQ(points.size(), 3u);
  // Strict point: predicts only (0,1): precision 1, recall 1.
  const GridPoint& strict = points[0];
  EXPECT_EQ(strict.variant, TindVariant::kStrict);
  EXPECT_DOUBLE_EQ(strict.pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(strict.pr.recall, 1.0);
  // eps=10 point: predicts both: precision 0.5, recall 1.
  const GridPoint& relaxed = points[1];
  EXPECT_EQ(relaxed.variant, TindVariant::kEpsilon);
  EXPECT_DOUBLE_EQ(relaxed.pr.precision, 0.5);
  // Static point: predicts everything.
  const GridPoint& stat = points.back();
  EXPECT_EQ(stat.variant, TindVariant::kStatic);
  EXPECT_DOUBLE_EQ(stat.pr.precision, 0.5);
  EXPECT_DOUBLE_EQ(stat.pr.recall, 1.0);
}

TEST(GridSearchTest, WeightedVariantUsesFractions) {
  Dataset dataset = testutil::MakeDataset(
      50, {
              {{0, ValueSet{1}}},
              {{0, ValueSet{1, 2}}},
          });
  const std::vector<LabeledPair> labelled{{{0, 1}, true}};
  GridSearchOptions opts;
  opts.epsilons = {0};
  opts.deltas = {0, 3};
  opts.decay_bases = {0.95};
  opts.epsilon_fractions = {0, 0.01};
  const auto points = RunGridSearch(dataset, labelled, opts);
  // 2 fractions x 2 deltas + static.
  ASSERT_EQ(points.size(), 5u);
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    EXPECT_EQ(points[i].variant, TindVariant::kWeighted);
    EXPECT_DOUBLE_EQ(points[i].pr.recall, 1.0);
  }
}

TEST(GridSearchTest, ParallelMatchesSerial) {
  Rng rng(5);
  Dataset dataset(TimeDomain(80), std::make_shared<ValueDictionary>());
  for (size_t i = 0; i < 12; ++i) {
    dataset.Add(testutil::RandomHistory(dataset.domain(), &rng, 15,
                                        static_cast<AttributeId>(i)));
  }
  std::vector<LabeledPair> labelled;
  for (AttributeId a = 0; a < 6; ++a) {
    labelled.push_back({{a, static_cast<AttributeId>(a + 6)}, a % 2 == 0});
  }
  GridSearchOptions serial_opts;
  serial_opts.epsilons = {0, 5};
  serial_opts.deltas = {0, 2};
  serial_opts.decay_bases = {1.0, 0.98};
  GridSearchOptions parallel_opts = serial_opts;
  ThreadPool pool(4);
  parallel_opts.pool = &pool;
  const auto a = RunGridSearch(dataset, labelled, serial_opts);
  const auto b = RunGridSearch(dataset, labelled, parallel_opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].pr.precision, b[i].pr.precision) << i;
    EXPECT_DOUBLE_EQ(a[i].pr.recall, b[i].pr.recall) << i;
  }
}

TEST(GridPointTest, LabelFormatting) {
  GridPoint p;
  p.variant = TindVariant::kEpsilonDelta;
  p.epsilon = 3;
  p.delta = 7;
  p.decay_base = 1.0;
  EXPECT_EQ(p.Label(), "eps-delta-relaxed eps=3 delta=7 a=1");
}

}  // namespace
}  // namespace tind
