#include "wiki/attribute_matching.h"

#include <gtest/gtest.h>

namespace tind::wiki {
namespace {

RawTableVersion MakeVersion(std::vector<std::string> headers,
                            std::vector<std::vector<std::string>> columns) {
  RawTableVersion v;
  v.headers = std::move(headers);
  v.columns = std::move(columns);
  return v;
}

TEST(ColumnJaccardTest, IdenticalColumns) {
  EXPECT_DOUBLE_EQ(ColumnJaccard({"a", "b"}, {"b", "a"}), 1.0);
}

TEST(ColumnJaccardTest, DisjointColumns) {
  EXPECT_DOUBLE_EQ(ColumnJaccard({"a"}, {"b"}), 0.0);
}

TEST(ColumnJaccardTest, PartialOverlap) {
  EXPECT_DOUBLE_EQ(ColumnJaccard({"a", "b", "c"}, {"b", "c", "d"}), 0.5);
}

TEST(ColumnJaccardTest, NormalizesBeforeComparing) {
  // Links resolve and nulls drop before the comparison.
  EXPECT_DOUBLE_EQ(ColumnJaccard({"[[A|x]]", "-"}, {"A"}), 1.0);
}

TEST(ColumnJaccardTest, EmptyColumns) {
  EXPECT_DOUBLE_EQ(ColumnJaccard({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(ColumnJaccard({"-"}, {"n/a"}), 0.0);
}

TEST(MatchColumnsTest, IdenticalHeadersMatch) {
  const auto prev = MakeVersion({"Name", "Year"}, {{"a"}, {"1"}});
  const auto next = MakeVersion({"Year", "Name"}, {{"2"}, {"b"}});
  const auto match = MatchColumns(prev, next);
  ASSERT_EQ(match.size(), 2u);
  EXPECT_EQ(match[0], 1);  // "Year" now first, was second.
  EXPECT_EQ(match[1], 0);
}

TEST(MatchColumnsTest, NewColumnsUnmatched) {
  const auto prev = MakeVersion({"A"}, {{"x"}});
  const auto next = MakeVersion({"A", "B"}, {{"x"}, {"fresh"}});
  const auto match = MatchColumns(prev, next);
  EXPECT_EQ(match[0], 0);
  EXPECT_EQ(match[1], -1);
}

TEST(MatchColumnsTest, RenamedColumnMatchedByValues) {
  const auto prev =
      MakeVersion({"Name"}, {{"alpha", "beta", "gamma", "delta"}});
  const auto next =
      MakeVersion({"Title"}, {{"alpha", "beta", "gamma", "delta", "eps"}});
  const auto match = MatchColumns(prev, next, 0.4);
  EXPECT_EQ(match[0], 0);
}

TEST(MatchColumnsTest, LowOverlapDoesNotMatch) {
  const auto prev = MakeVersion({"Name"}, {{"a", "b", "c"}});
  const auto next = MakeVersion({"Other"}, {{"x", "y", "z"}});
  const auto match = MatchColumns(prev, next, 0.4);
  EXPECT_EQ(match[0], -1);
}

TEST(MatchColumnsTest, DuplicateHeadersFallBackToValues) {
  const auto prev =
      MakeVersion({"Col", "Col"}, {{"a", "b", "c"}, {"x", "y", "z"}});
  const auto next =
      MakeVersion({"Col", "Col"}, {{"x", "y", "z"}, {"a", "b", "c"}});
  const auto match = MatchColumns(prev, next, 0.4);
  EXPECT_EQ(match[0], 1);
  EXPECT_EQ(match[1], 0);
}

TEST(MatchColumnsTest, GreedyPicksBestOverlapFirst) {
  // next[0] overlaps prev[0] more than next[1] does; each prev column can
  // be used once.
  const auto prev = MakeVersion({"X"}, {{"a", "b", "c", "d"}});
  const auto next = MakeVersion(
      {"Y", "Z"}, {{"a", "b", "c", "d"}, {"a", "b", "q", "r"}});
  const auto match = MatchColumns(prev, next, 0.2);
  EXPECT_EQ(match[0], 0);
  EXPECT_EQ(match[1], -1);  // prev[0] already taken.
}

TEST(MatchColumnsTest, HeaderMatchBeatsValueMatch) {
  // Header "A" matches even though the values moved to the other column.
  const auto prev = MakeVersion({"A", "B"}, {{"1", "2"}, {"8", "9"}});
  const auto next = MakeVersion({"A", "B"}, {{"8", "9"}, {"1", "2"}});
  const auto match = MatchColumns(prev, next);
  EXPECT_EQ(match[0], 0);
  EXPECT_EQ(match[1], 1);
}

TEST(MatchColumnsTest, EmptyPreviousVersion) {
  const RawTableVersion prev;
  const auto next = MakeVersion({"A"}, {{"x"}});
  const auto match = MatchColumns(prev, next);
  EXPECT_EQ(match[0], -1);
}

TEST(MatchColumnsTest, ColumnDeletionLeavesPrevUnused) {
  const auto prev = MakeVersion({"A", "B"}, {{"x"}, {"y"}});
  const auto next = MakeVersion({"A"}, {{"x"}});
  const auto match = MatchColumns(prev, next);
  ASSERT_EQ(match.size(), 1u);
  EXPECT_EQ(match[0], 0);
}

}  // namespace
}  // namespace tind::wiki
