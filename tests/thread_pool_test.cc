#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace tind {
namespace {

TEST(ThreadPoolTest, DefaultSizeMatchesHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitManyTasks) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionsThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> counts(n);
  pool.ParallelFor(0, n, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](size_t) { calls.fetch_add(1); });
  pool.ParallelFor(7, 3, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForNonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.ParallelFor(10, 20, [&](size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ParallelForActuallyUsesWorkers) {
  ThreadPool pool(4);
  std::set<std::thread::id> ids;
  std::mutex m;
  // Each index sleeps briefly so the calling thread cannot race through all
  // chunks before the workers wake up.
  pool.ParallelFor(0, 64, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::lock_guard<std::mutex> lock(m);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { done.fetch_add(1); });
    }
  }  // Destructor joins after draining.
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, DefaultThreadPoolSingleton) {
  EXPECT_EQ(DefaultThreadPool(), DefaultThreadPool());
  EXPECT_GE(DefaultThreadPool()->num_threads(), 1u);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  try {
    pool.ParallelFor(0, 1000, [&](size_t i) {
      calls.fetch_add(1);
      if (i == 137) throw std::runtime_error("index 137 failed");
    });
    FAIL() << "ParallelFor swallowed the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 137 failed");
  }
  // The failing index ran; later chunks may have been skipped but the pool
  // must still be usable afterwards.
  EXPECT_GE(calls.load(), 1);
  std::atomic<int> after{0};
  pool.ParallelFor(0, 100, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 100);
}

TEST(ThreadPoolTest, ParallelForStopsEarlyAfterException) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  EXPECT_THROW(pool.ParallelFor(0, 100000,
                                [&](size_t i) {
                                  calls.fetch_add(1);
                                  if (i == 0) throw std::runtime_error("x");
                                }),
               std::runtime_error);
  // Index 0 is in the calling thread's first chunk, so the abort flag is up
  // long before 100k indices complete.
  EXPECT_LT(calls.load(), 100000);
}

TEST(ThreadPoolTest, ParallelForCancellationStopsAtIndexBoundary) {
  ThreadPool pool(2);
  CancellationToken cancel;
  cancel.Cancel();
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 10000, [&](size_t) { calls.fetch_add(1); }, &cancel);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForCancellationMidRun) {
  ThreadPool pool(2);
  CancellationToken cancel;
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 100000, [&](size_t i) {
    calls.fetch_add(1);
    if (i == 10) cancel.Cancel();
  }, &cancel);
  EXPECT_GE(calls.load(), 1);
  EXPECT_LT(calls.load(), 100000);
}

TEST(ThreadPoolTest, SubmitDetachedDoesNotLoseTheTask) {
  ThreadPool pool(2);
  std::promise<int> result;
  auto future = result.get_future();
  pool.SubmitDetached([&] { result.set_value(7); });
  EXPECT_EQ(future.get(), 7);
}

TEST(ThreadPoolTest, SubmitDetachedSurvivesThrowingTask) {
  // Regression: a throwing task whose Submit future was discarded used to
  // strand the exception in the shared state; with a detached submit the
  // exception must be reported and the pool must keep working.
  ThreadPool pool(1);
  pool.SubmitDetached([] { throw std::runtime_error("detached boom"); });
  pool.SubmitDetached([] { throw 42; });  // Non-std exceptions too.
  auto f = pool.Submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

TEST(PlanBatchShardsTest, EmptyAndSingle) {
  EXPECT_TRUE(PlanBatchShards(0, 4, 64).empty());
  const auto one = PlanBatchShards(1, 4, 64);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], (IndexRange{0, 1}));
}

TEST(PlanBatchShardsTest, SequentialUsesFullGroups) {
  // One worker: no reason to split below the amortization width.
  const auto shards = PlanBatchShards(200, 1, 64);
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_EQ(shards[0], (IndexRange{0, 64}));
  EXPECT_EQ(shards[1], (IndexRange{64, 128}));
  EXPECT_EQ(shards[2], (IndexRange{128, 192}));
  EXPECT_EQ(shards[3], (IndexRange{192, 200}));
}

TEST(PlanBatchShardsTest, ShrinksToKeepWorkersBusy) {
  // 100 items over 4 workers: whole-64 shards would use only 2 workers, so
  // the planner shrinks to ceil(100/4) = 25.
  const auto shards = PlanBatchShards(100, 4, 64);
  ASSERT_EQ(shards.size(), 4u);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(shards[s], (IndexRange{s * 25, (s + 1) * 25}));
  }
}

TEST(PlanBatchShardsTest, NeverExceedsMaxShardAndTilesExactly) {
  for (const size_t total : {1u, 17u, 63u, 64u, 65u, 100u, 1000u}) {
    for (const size_t workers : {1u, 2u, 7u, 16u}) {
      for (const size_t max_shard : {1u, 8u, 64u}) {
        const auto shards = PlanBatchShards(total, workers, max_shard);
        size_t expected_begin = 0;
        for (const IndexRange& r : shards) {
          EXPECT_EQ(r.begin, expected_begin);
          EXPECT_GT(r.size(), 0u);
          EXPECT_LE(r.size(), max_shard);
          expected_begin = r.end;
        }
        EXPECT_EQ(expected_begin, total)
            << "total=" << total << " workers=" << workers
            << " max_shard=" << max_shard;
      }
    }
  }
}

TEST(PlanBatchShardsTest, ZeroMaxShardBehavesAsOne) {
  const auto shards = PlanBatchShards(3, 1, 0);
  ASSERT_EQ(shards.size(), 3u);
  for (size_t s = 0; s < 3; ++s) EXPECT_EQ(shards[s].size(), 1u);
}

TEST(CancellationTokenTest, SharedState) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  CancellationToken copy = token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(copy.cancelled());
}

}  // namespace
}  // namespace tind
