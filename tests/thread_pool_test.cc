#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace tind {
namespace {

TEST(ThreadPoolTest, DefaultSizeMatchesHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitManyTasks) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionsThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> counts(n);
  pool.ParallelFor(0, n, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](size_t) { calls.fetch_add(1); });
  pool.ParallelFor(7, 3, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForNonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.ParallelFor(10, 20, [&](size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ParallelForActuallyUsesWorkers) {
  ThreadPool pool(4);
  std::set<std::thread::id> ids;
  std::mutex m;
  // Each index sleeps briefly so the calling thread cannot race through all
  // chunks before the workers wake up.
  pool.ParallelFor(0, 64, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::lock_guard<std::mutex> lock(m);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { done.fetch_add(1); });
    }
  }  // Destructor joins after draining.
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, DefaultThreadPoolSingleton) {
  EXPECT_EQ(DefaultThreadPool(), DefaultThreadPool());
  EXPECT_GE(DefaultThreadPool()->num_threads(), 1u);
}

}  // namespace
}  // namespace tind
