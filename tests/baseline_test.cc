#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/k_many.h"
#include "baseline/static_ind.h"
#include "test_util.h"
#include "tind/validator.h"

namespace tind {
namespace {

using testutil::MakeDataset;

Dataset SnapshotDataset() {
  // Latest snapshot (day 99): 0:{1,2}, 1:{1,2,3}, 2:{9}, 3:{2}.
  return MakeDataset(100, {
                              {{0, ValueSet{1}}, {50, ValueSet{1, 2}}},
                              {{0, ValueSet{1, 2, 3}}},
                              {{10, ValueSet{9}}},
                              {{0, ValueSet{7}}, {80, ValueSet{2}}},
                          });
}

TEST(StaticIndTest, BuildDefaultsToLatestSnapshot) {
  const Dataset dataset = SnapshotDataset();
  StaticIndOptions opts;
  opts.bloom_bits = 256;
  auto d = StaticIndDiscovery::Build(dataset, opts);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->snapshot(), 99);
}

TEST(StaticIndTest, RejectsBadOptions) {
  const Dataset dataset = SnapshotDataset();
  StaticIndOptions opts;
  opts.bloom_bits = 100;
  EXPECT_TRUE(StaticIndDiscovery::Build(dataset, opts).status().IsInvalidArgument());
  opts.bloom_bits = 256;
  opts.snapshot = 500;
  EXPECT_TRUE(StaticIndDiscovery::Build(dataset, opts).status().IsInvalidArgument());
}

TEST(StaticIndTest, SearchAtLatestSnapshot) {
  const Dataset dataset = SnapshotDataset();
  StaticIndOptions opts;
  opts.bloom_bits = 256;
  auto d = StaticIndDiscovery::Build(dataset, opts);
  ASSERT_TRUE(d.ok());
  // Q = attr 0 holds {1,2} at day 99; contained in attr 1 only.
  EXPECT_EQ((*d)->Search(dataset.attribute(0)),
            (std::vector<AttributeId>{1}));
  // Attr 3 holds {2} at day 99; contained in 0 and 1.
  EXPECT_EQ((*d)->Search(dataset.attribute(3)),
            (std::vector<AttributeId>{0, 1}));
}

TEST(StaticIndTest, SearchAtEarlierSnapshot) {
  const Dataset dataset = SnapshotDataset();
  StaticIndOptions opts;
  opts.bloom_bits = 256;
  opts.snapshot = 20;  // attr 0 = {1}, attr 3 = {7}.
  auto d = StaticIndDiscovery::Build(dataset, opts);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->Search(dataset.attribute(0)),
            (std::vector<AttributeId>{1}));
  EXPECT_TRUE((*d)->Search(dataset.attribute(3)).empty());
}

TEST(StaticIndTest, AllPairsSkipsEmptyLhs) {
  const Dataset dataset = MakeDataset(
      50, {
              {{0, ValueSet{1}}},
              {{0, ValueSet{1, 2}}},
              {{0, ValueSet{3}}, {40, ValueSet()}},  // Empty at snapshot.
          });
  StaticIndOptions opts;
  opts.bloom_bits = 256;
  auto d = StaticIndDiscovery::Build(dataset, opts);
  ASSERT_TRUE(d.ok());
  const AllPairsResult result = (*d)->AllPairs();
  const std::set<TindPair> pairs(result.pairs.begin(), result.pairs.end());
  EXPECT_TRUE(pairs.count(TindPair{0, 1}));
  // Attr 2 is empty at the snapshot: no trivial INDs emitted.
  for (const TindPair& p : pairs) EXPECT_NE(p.lhs, 2u);
}

TEST(StaticIndTest, AllPairsParallelMatchesSerial) {
  Rng rng(3);
  Dataset dataset(TimeDomain(60), std::make_shared<ValueDictionary>());
  for (size_t i = 0; i < 30; ++i) {
    dataset.Add(testutil::RandomHistory(dataset.domain(), &rng, 10,
                                        static_cast<AttributeId>(i)));
  }
  StaticIndOptions opts;
  opts.bloom_bits = 512;
  auto d = StaticIndDiscovery::Build(dataset, opts);
  ASSERT_TRUE(d.ok());
  ThreadPool pool(4);
  EXPECT_EQ((*d)->AllPairs().pairs, (*d)->AllPairs(&pool).pairs);
}

TEST(KManyTest, BuildSamplesDistinctSnapshots) {
  const Dataset dataset = SnapshotDataset();
  KManyOptions opts;
  opts.bloom_bits = 256;
  opts.num_snapshots = 8;
  auto km = KMany::Build(dataset, opts);
  ASSERT_TRUE(km.ok());
  const auto& snaps = (*km)->snapshots();
  EXPECT_EQ(snaps.size(), 8u);
  EXPECT_TRUE(std::is_sorted(snaps.begin(), snaps.end()));
  EXPECT_EQ(std::set<Timestamp>(snaps.begin(), snaps.end()).size(), 8u);
}

TEST(KManyTest, SnapshotsCappedByDomain) {
  const Dataset dataset = MakeDataset(5, {{{0, ValueSet{1}}}});
  KManyOptions opts;
  opts.bloom_bits = 256;
  opts.num_snapshots = 99;
  auto km = KMany::Build(dataset, opts);
  ASSERT_TRUE(km.ok());
  EXPECT_EQ((*km)->snapshots().size(), 5u);
}

TEST(KManyTest, SearchReturnsAllValidTinds) {
  // k-MANY pruning is weak but must never lose a valid tIND.
  Rng rng(9);
  Dataset dataset(TimeDomain(80), std::make_shared<ValueDictionary>());
  for (size_t i = 0; i < 30; ++i) {
    dataset.Add(testutil::RandomHistory(dataset.domain(), &rng, 12,
                                        static_cast<AttributeId>(i), 5, 5));
  }
  const ConstantWeight w(80);
  KManyOptions opts;
  opts.bloom_bits = 512;
  opts.num_snapshots = 10;
  auto km = KMany::Build(dataset, opts);
  ASSERT_TRUE(km.ok());
  const TindParams params{3.0, 2, &w};
  for (AttributeId q = 0; q < 10; ++q) {
    auto results = (*km)->Search(dataset.attribute(q), params);
    ASSERT_TRUE(results.ok());
    for (AttributeId a = 0; a < dataset.size(); ++a) {
      if (a == q) continue;
      const bool expected =
          ValidateTindNaive(dataset.attribute(q), dataset.attribute(a), params,
                            dataset.domain());
      EXPECT_EQ(static_cast<bool>(std::count(results->begin(), results->end(),
                                             a)),
                expected)
          << "q=" << q << " a=" << a;
    }
  }
}

TEST(KManyTest, QueryTracksAllCandidatesInMemory) {
  const Dataset dataset = SnapshotDataset();
  const ConstantWeight w(100);
  KManyOptions opts;
  opts.bloom_bits = 256;
  opts.num_snapshots = 4;
  // Matrices are not charged; the per-query violation array (4 attributes
  // x 8 bytes = 32) must not fit.
  MemoryBudget budget(16);
  opts.memory = &budget;
  auto km = KMany::Build(dataset, opts);
  ASSERT_TRUE(km.ok());
  const TindParams params{3.0, 0, &w};
  const auto result = (*km)->Search(dataset.attribute(0), params);
  EXPECT_TRUE(result.status().IsOutOfMemory());
}

TEST(KManyTest, MemoryFreedAfterQuery) {
  const Dataset dataset = SnapshotDataset();
  const ConstantWeight w(100);
  KManyOptions opts;
  opts.bloom_bits = 256;
  opts.num_snapshots = 2;
  MemoryBudget budget(0);  // Unlimited, but tracked.
  opts.memory = &budget;
  auto km = KMany::Build(dataset, opts);
  ASSERT_TRUE(km.ok());
  const size_t after_build = budget.used();
  const TindParams params{3.0, 0, &w};
  ASSERT_TRUE((*km)->Search(dataset.attribute(0), params).ok());
  EXPECT_EQ(budget.used(), after_build);
}

TEST(KManyTest, StatsReportFullCandidateTracking) {
  const Dataset dataset = SnapshotDataset();
  const ConstantWeight w(100);
  KManyOptions opts;
  opts.bloom_bits = 256;
  auto km = KMany::Build(dataset, opts);
  ASSERT_TRUE(km.ok());
  QueryStats stats;
  const TindParams params{3.0, 0, &w};
  ASSERT_TRUE((*km)->Search(dataset.attribute(0), params, &stats).ok());
  // Unlike TindIndex, the initial candidate set is the whole dataset.
  EXPECT_EQ(stats.initial_candidates, dataset.size());
}

}  // namespace
}  // namespace tind
