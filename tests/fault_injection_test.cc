#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace tind {
namespace {

/// Disarms the global injector around each test.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultInjectionTest, DisabledByDefault) {
  EXPECT_FALSE(FaultInjector::Global().enabled());
  EXPECT_FALSE(TIND_FAULT_POINT("some/point"));
  EXPECT_EQ(FaultInjector::Global().total_fired(), 0u);
}

TEST_F(FaultInjectionTest, ConfigureParsesSpec) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("a/b=0.5,c/d=1", 7).ok());
  EXPECT_TRUE(injector.enabled());
  EXPECT_EQ(injector.seed(), 7u);
}

TEST_F(FaultInjectionTest, ConfigureRejectsBadSpecs) {
  auto& injector = FaultInjector::Global();
  EXPECT_FALSE(injector.Configure("a/b", 1).ok());
  EXPECT_FALSE(injector.Configure("a/b=1.5", 1).ok());
  EXPECT_FALSE(injector.Configure("a/b=-0.1", 1).ok());
  EXPECT_FALSE(injector.Configure("=0.5", 1).ok());
  EXPECT_FALSE(injector.Configure("a/b=zebra", 1).ok());
  // A failed Configure leaves the injector disarmed.
  EXPECT_FALSE(injector.enabled());
}

#if TIND_FAULT_INJECTION_DISABLED

TEST_F(FaultInjectionTest, CompiledOutPointsNeverFireEvenWhenArmed) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("io/fail=1", 3).ok());
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(TIND_FAULT_POINT("io/fail"));
  EXPECT_EQ(injector.total_fired(), 0u);
}

#else  // TIND_FAULT_INJECTION_DISABLED

TEST_F(FaultInjectionTest, ProbabilityOneAlwaysFires) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("io/fail=1", 3).ok());
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(TIND_FAULT_POINT("io/fail"));
  EXPECT_EQ(injector.fired("io/fail"), 20u);
  EXPECT_EQ(injector.total_fired(), 20u);
}

TEST_F(FaultInjectionTest, ProbabilityZeroNeverFires) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("io/fail=0", 3).ok());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(TIND_FAULT_POINT("io/fail"));
  EXPECT_EQ(injector.total_fired(), 0u);
}

TEST_F(FaultInjectionTest, UnlistedPointsNeverFire) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("io/fail=1", 3).ok());
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(TIND_FAULT_POINT("other/point"));
}

TEST_F(FaultInjectionTest, WildcardAppliesToUnlistedPoints) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("*=1,quiet/point=0", 3).ok());
  EXPECT_TRUE(TIND_FAULT_POINT("any/point"));
  EXPECT_FALSE(TIND_FAULT_POINT("quiet/point"));
}

TEST_F(FaultInjectionTest, FiringIsDeterministicInSeed) {
  auto& injector = FaultInjector::Global();
  const auto run = [&](uint64_t seed) {
    EXPECT_TRUE(injector.Configure("p/q=0.3", seed).ok());
    std::vector<bool> decisions;
    for (int i = 0; i < 200; ++i) decisions.push_back(TIND_FAULT_POINT("p/q"));
    return decisions;
  };
  const std::vector<bool> first = run(11);
  const std::vector<bool> again = run(11);
  const std::vector<bool> other = run(12);
  EXPECT_EQ(first, again);
  EXPECT_NE(first, other);  // Astronomically unlikely to collide.
}

TEST_F(FaultInjectionTest, IntermediateProbabilityFiresSometimes) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("p/q=0.5", 99).ok());
  size_t fired = 0;
  for (int i = 0; i < 400; ++i) {
    if (TIND_FAULT_POINT("p/q")) ++fired;
  }
  // A fair-ish coin over 400 draws: bounds are loose on purpose.
  EXPECT_GT(fired, 100u);
  EXPECT_LT(fired, 300u);
}

TEST_F(FaultInjectionTest, ResetDisarmsAndClearsCounters) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("io/fail=1", 3).ok());
  EXPECT_TRUE(TIND_FAULT_POINT("io/fail"));
  injector.Reset();
  EXPECT_FALSE(injector.enabled());
  EXPECT_EQ(injector.total_fired(), 0u);
  EXPECT_EQ(injector.fired("io/fail"), 0u);
  EXPECT_FALSE(TIND_FAULT_POINT("io/fail"));
}

#endif  // TIND_FAULT_INJECTION_DISABLED

TEST_F(FaultInjectionTest, ConfigureFromEnvNoOpWhenUnset) {
  ::unsetenv("TIND_FAULT_SPEC");
  EXPECT_TRUE(FaultInjector::Global().ConfigureFromEnv().ok());
  EXPECT_FALSE(FaultInjector::Global().enabled());
}

TEST_F(FaultInjectionTest, ConfigureFromEnvArmsInjector) {
  ::setenv("TIND_FAULT_SPEC", "env/point=1", 1);
  ::setenv("TIND_FAULT_SEED", "21", 1);
  EXPECT_TRUE(FaultInjector::Global().ConfigureFromEnv().ok());
  EXPECT_TRUE(FaultInjector::Global().enabled());
  EXPECT_EQ(FaultInjector::Global().seed(), 21u);
#if !TIND_FAULT_INJECTION_DISABLED
  EXPECT_TRUE(TIND_FAULT_POINT("env/point"));
#endif
  ::unsetenv("TIND_FAULT_SPEC");
  ::unsetenv("TIND_FAULT_SEED");
}

}  // namespace
}  // namespace tind
