#ifndef TIND_TESTS_TEST_UTIL_H_
#define TIND_TESTS_TEST_UTIL_H_

/// Shared helpers for building tiny attribute histories and datasets in
/// tests.

#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "temporal/attribute_history.h"
#include "temporal/dataset.h"

namespace tind::testutil {

/// Builds a history from (timestamp, value set) pairs.
inline AttributeHistory MakeHistory(
    const TimeDomain& domain,
    const std::vector<std::pair<Timestamp, ValueSet>>& versions,
    AttributeId id = 0) {
  AttributeHistoryBuilder b(id, AttributeMeta{"p", "t", "c" + std::to_string(id)},
                            domain);
  for (const auto& [ts, values] : versions) {
    const Status st = b.AddVersion(ts, values);
    if (!st.ok()) std::abort();
  }
  auto result = b.Finish();
  if (!result.ok()) std::abort();
  return std::move(result).ValueOrDie();
}

/// Builds a dataset from per-attribute version lists.
inline Dataset MakeDataset(
    int64_t num_days,
    const std::vector<std::vector<std::pair<Timestamp, ValueSet>>>& attrs) {
  Dataset dataset(TimeDomain(num_days), std::make_shared<ValueDictionary>());
  for (size_t i = 0; i < attrs.size(); ++i) {
    dataset.Add(MakeHistory(dataset.domain(), attrs[i],
                            static_cast<AttributeId>(i)));
  }
  return dataset;
}

/// Generates a random history over values [0, value_universe).
inline AttributeHistory RandomHistory(const TimeDomain& domain, Rng* rng,
                                      size_t value_universe, AttributeId id = 0,
                                      size_t max_versions = 8,
                                      size_t max_cardinality = 6) {
  const int64_t n = domain.num_timestamps();
  const size_t n_versions = 1 + rng->Uniform(max_versions);
  std::vector<Timestamp> ts;
  for (size_t i = 0; i < n_versions; ++i) {
    ts.push_back(static_cast<Timestamp>(rng->Uniform(n)));
  }
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
  AttributeHistoryBuilder b(id, {}, domain);
  bool added = false;
  for (const Timestamp t : ts) {
    std::vector<ValueId> vals;
    const size_t card = rng->Uniform(max_cardinality + 1);
    for (size_t i = 0; i < card; ++i) {
      vals.push_back(static_cast<ValueId>(rng->Uniform(value_universe)));
    }
    const Status st = b.AddVersion(t, ValueSet::FromUnsorted(std::move(vals)));
    if (st.ok()) added = true;
  }
  if (!added || b.num_versions() == 0) {
    // Guarantee at least one version.
    (void)b.AddVersion(domain.last(), ValueSet{0});
  }
  auto result = b.Finish();
  if (!result.ok()) std::abort();
  return std::move(result).ValueOrDie();
}

}  // namespace tind::testutil

#endif  // TIND_TESTS_TEST_UTIL_H_
