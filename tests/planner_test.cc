#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "temporal/weights.h"
#include "tind/index.h"
#include "tind/planner.h"
#include "wiki/generator.h"

/// \file planner_test.cc
/// Unit tests for the cost-model planner's decision boundary: the skip /
/// run choice must flip exactly where cost(slice stage) crosses
/// p · |C₁| · cost(validate), tiny candidate sets must go straight to
/// validation, an over-δ query must get the default plan, and Observe()
/// must move the EWMA cells toward the observed samples (ignoring
/// cancelled / degraded stats).

namespace tind {
namespace {

wiki::GeneratedDataset MakeCorpus(uint64_t seed) {
  wiki::GeneratorOptions gen;
  gen.seed = seed;
  gen.num_days = 150;
  gen.num_families = 2;
  gen.num_noise_attributes = 12;
  gen.num_drifter_attributes = 4;
  gen.num_catchall_attributes = 2;
  gen.shared_vocabulary = 100;
  gen.entities_per_family_pool = 60;
  auto generated = wiki::WikiGenerator(gen).GenerateDataset();
  if (!generated.ok()) std::abort();
  return std::move(*generated);
}

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = std::make_unique<wiki::GeneratedDataset>(MakeCorpus(17));
    const int64_t n_days = corpus_->dataset.domain().num_timestamps();
    weight_ = std::make_unique<ConstantWeight>(n_days);
    TindIndexOptions opts;
    opts.bloom_bits = 512;
    opts.num_hashes = 2;
    opts.num_slices = 6;
    opts.delta = 7;
    opts.epsilon = 3.0;
    opts.weight = weight_.get();
    auto built = TindIndex::Build(corpus_->dataset, opts);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    index_ = std::move(*built);
    // Pick a query with versions inside the indexed slices, so the
    // zero-probe fast path does not mask the cost comparison under test.
    // With zero slice cost and an enormous validate cost the planner skips
    // only when the probe count is zero.
    PlannerOptions probe_check;
    probe_check.slice_stage_cost_us = 0.0;
    probe_check.validate_cost_us = 1e9;
    probe_check.direct_validate_max = 0;
    const CostModelPlanner sentinel(*index_, probe_check);
    const TindParams params{3.0, 7, weight_.get()};
    for (size_t q = 0; q < corpus_->dataset.size(); ++q) {
      const AttributeHistory& candidate =
          corpus_->dataset.attribute(static_cast<AttributeId>(q));
      if (!sentinel.Plan(candidate, params, 1000).skip_slices) {
        query_ = &candidate;
        break;
      }
    }
    ASSERT_NE(query_, nullptr) << "no attribute intersects any slice";
  }

  std::unique_ptr<wiki::GeneratedDataset> corpus_;
  std::unique_ptr<ConstantWeight> weight_;
  std::unique_ptr<TindIndex> index_;
  const AttributeHistory* query_ = nullptr;
};

TEST_F(PlannerTest, OverDeltaQueriesGetTheDefaultPlan) {
  const CostModelPlanner planner(*index_);
  const TindParams params{3.0, /*delta=*/100, weight_.get()};
  const QueryPlan plan = planner.Plan(*query_, params, 1000);
  EXPECT_FALSE(plan.skip_slices);
  EXPECT_FALSE(plan.skip_recheck);
}

TEST_F(PlannerTest, TinyCandidateSetsSkipStraightToValidation) {
  PlannerOptions options;
  options.direct_validate_max = 8;
  const CostModelPlanner planner(*index_, options);
  const TindParams params{3.0, 7, weight_.get()};

  const QueryPlan tiny = planner.Plan(*query_, params, 8);
  EXPECT_TRUE(tiny.skip_slices);
  EXPECT_TRUE(tiny.skip_recheck);

  const QueryPlan boundary = planner.Plan(*query_, params, 9);
  EXPECT_FALSE(boundary.skip_recheck);  // Only the tiny path skips recheck.
}

TEST_F(PlannerTest, SkipDecisionFlipsExactlyAtTheCostCrossover) {
  // Pin every model input so the boundary is arithmetic, not measurement:
  // slice stage costs 1000us, a validation 10us, and (to pin the seeded
  // pruning fraction) observe nothing. With pruning fraction p the planner
  // skips iff 1000 >= p * C * 10, i.e. C <= 100 / p.
  PlannerOptions options;
  options.slice_stage_cost_us = 1000.0;
  options.validate_cost_us = 10.0;
  options.direct_validate_max = 0;  // Disable the tiny-set fast path.
  const CostModelPlanner planner(*index_, options);
  const double p = planner.pruning_fraction();
  ASSERT_GT(p, 0.0);
  ASSERT_LE(p, 1.0);
  const TindParams params{3.0, 7, weight_.get()};

  const size_t crossover = static_cast<size_t>(1000.0 / (p * 10.0));
  const QueryPlan below = planner.Plan(*query_, params, crossover);
  EXPECT_TRUE(below.skip_slices)
      << "crossover=" << crossover << " p=" << p;
  const QueryPlan above = planner.Plan(*query_, params, crossover * 2 + 2);
  EXPECT_FALSE(above.skip_slices)
      << "crossover=" << crossover << " p=" << p;
  EXPECT_FALSE(below.skip_recheck);
  EXPECT_FALSE(above.skip_recheck);
}

TEST_F(PlannerTest, ZeroSliceProbesSkipsTheSliceStage) {
  // An empty history has no versions inside any slice: the stage would
  // issue zero probes, so the planner skips it regardless of costs.
  PlannerOptions options;
  options.slice_stage_cost_us = 0.0;  // Costs say "run it"; probes say no.
  options.validate_cost_us = 1e9;
  options.direct_validate_max = 0;
  const CostModelPlanner planner(*index_, options);
  const AttributeHistory empty;  // No versions anywhere, slices included.
  const TindParams params{3.0, 7, weight_.get()};
  const QueryPlan plan = planner.Plan(empty, params, 1000);
  EXPECT_TRUE(plan.skip_slices);
  EXPECT_FALSE(plan.skip_recheck);
}

TEST_F(PlannerTest, ObserveConvergesTheEwmaCells) {
  PlannerOptions options;
  options.ewma_alpha = 0.5;
  options.slice_stage_cost_us = 1000.0;
  options.validate_cost_us = 100.0;
  CostModelPlanner planner(*index_, options);

  QueryStats stats;
  stats.initial_candidates = 100;
  stats.after_slices = 20;  // Realized pruning fraction 0.8.
  stats.used_slices = true;
  stats.slices_ms = 0.050;    // 50us per slice stage.
  stats.validations = 10;
  stats.validate_ms = 0.010;  // 1us per validation.
  for (int i = 0; i < 64; ++i) planner.Observe(stats);

  EXPECT_NEAR(planner.pruning_fraction(), 0.8, 1e-6);
  EXPECT_NEAR(planner.slice_stage_cost_us(), 50.0, 1e-3);
  EXPECT_NEAR(planner.validate_cost_us(), 1.0, 1e-6);

  // Cancelled / degraded stats must not move the model.
  QueryStats cancelled = stats;
  cancelled.cancelled = true;
  cancelled.slices_ms = 1e6;
  planner.Observe(cancelled);
  EXPECT_NEAR(planner.slice_stage_cost_us(), 50.0, 1e-3);
  QueryStats degraded = stats;
  degraded.degraded = true;
  degraded.slices_ms = 1e6;
  planner.Observe(degraded);
  EXPECT_NEAR(planner.slice_stage_cost_us(), 50.0, 1e-3);
}

}  // namespace
}  // namespace tind
