#include "tind/index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"
#include "tind/validator.h"

namespace tind {
namespace {

using testutil::MakeDataset;
using testutil::MakeHistory;

/// Small deterministic dataset with known containments:
///  0: Q  = {1} then {1,2}            (child)
///  1: A  = {1,2,3} always            (contains 0 strictly)
///  2: B  = {1,2} from day 5          (contains 0 from day 5 only)
///  3: C  = {9} always                (unrelated)
///  4: D  = {1,2,3,4} with a gap      (temporarily loses value 2)
Dataset SmallDataset() {
  return MakeDataset(
      100, {
               {{0, ValueSet{1}}, {50, ValueSet{1, 2}}},
               {{0, ValueSet{1, 2, 3}}},
               {{5, ValueSet{1, 2}}},
               {{0, ValueSet{9}}},
               {{0, ValueSet{1, 2, 3, 4}},
                {60, ValueSet{1, 3, 4}},
                {63, ValueSet{1, 2, 3, 4}}},
           });
}

TindIndexOptions SmallOptions(const WeightFunction* w) {
  TindIndexOptions opts;
  opts.bloom_bits = 256;
  opts.num_hashes = 2;
  opts.num_slices = 4;
  opts.delta = 3;
  opts.epsilon = 5.0;
  opts.weight = w;
  opts.seed = 11;
  return opts;
}

TEST(TindIndexBuildTest, RejectsBadOptions) {
  const Dataset dataset = SmallDataset();
  const ConstantWeight w(100);
  TindIndexOptions opts = SmallOptions(&w);
  opts.bloom_bits = 1000;  // Not a power of two.
  EXPECT_TRUE(TindIndex::Build(dataset, opts).status().IsInvalidArgument());
  opts = SmallOptions(&w);
  opts.weight = nullptr;
  EXPECT_TRUE(TindIndex::Build(dataset, opts).status().IsInvalidArgument());
  opts = SmallOptions(&w);
  opts.num_hashes = 0;
  EXPECT_TRUE(TindIndex::Build(dataset, opts).status().IsInvalidArgument());
  opts = SmallOptions(&w);
  opts.epsilon = -1;
  EXPECT_TRUE(TindIndex::Build(dataset, opts).status().IsInvalidArgument());
}

TEST(TindIndexBuildTest, BuildsSlices) {
  const Dataset dataset = SmallDataset();
  const ConstantWeight w(100);
  const auto index = TindIndex::Build(dataset, SmallOptions(&w));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->slice_intervals().size(), 4u);
  EXPECT_GT((*index)->MemoryUsageBytes(), 0u);
}

TEST(TindIndexBuildTest, MemoryBudgetEnforced) {
  const Dataset dataset = SmallDataset();
  const ConstantWeight w(100);
  MemoryBudget budget(64);  // Far too small for even one matrix.
  TindIndexOptions opts = SmallOptions(&w);
  opts.memory = &budget;
  EXPECT_TRUE(TindIndex::Build(dataset, opts).status().IsOutOfMemory());
}

class TindIndexSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = SmallDataset();
    weight_ = std::make_unique<ConstantWeight>(100);
    auto index = TindIndex::Build(dataset_, SmallOptions(weight_.get()));
    ASSERT_TRUE(index.ok());
    index_ = std::move(*index);
  }

  Dataset dataset_;
  std::unique_ptr<ConstantWeight> weight_;
  std::unique_ptr<TindIndex> index_;
};

TEST_F(TindIndexSearchTest, StrictSearchFindsTrueSuperset) {
  const TindParams params{0.0, 0, weight_.get()};
  const auto results = index_->Search(dataset_.attribute(0), params);
  // Only attribute 1 contains Q at every timestamp. D loses value 2 during
  // days 60..62, but Q holds {1,2} then — violation; B misses days 0..4.
  EXPECT_EQ(results, (std::vector<AttributeId>{1}));
}

TEST_F(TindIndexSearchTest, EpsilonRecoversLateBorn) {
  // B misses only days 0..4 (5 days): valid at eps >= 5.
  const TindParams params{5.0, 0, weight_.get()};
  const auto results = index_->Search(dataset_.attribute(0), params);
  EXPECT_TRUE(std::count(results.begin(), results.end(), 2));
  EXPECT_TRUE(std::count(results.begin(), results.end(), 1));
}

TEST_F(TindIndexSearchTest, DeltaRecoversGap) {
  // D's 3-day gap (60..62) is rescued by delta = 3.
  const TindParams strict{0.0, 0, weight_.get()};
  auto results = index_->Search(dataset_.attribute(0), strict);
  EXPECT_FALSE(std::count(results.begin(), results.end(), 4));
  const TindParams with_delta{0.0, 3, weight_.get()};
  results = index_->Search(dataset_.attribute(0), with_delta);
  EXPECT_TRUE(std::count(results.begin(), results.end(), 4));
}

TEST_F(TindIndexSearchTest, SelfExcluded) {
  const TindParams params{100.0, 3, weight_.get()};
  const auto results = index_->Search(dataset_.attribute(0), params);
  EXPECT_FALSE(std::count(results.begin(), results.end(), 0));
}

TEST_F(TindIndexSearchTest, ExternalQueryNotExcluded) {
  // A query built outside the dataset may equal an indexed attribute but is
  // not excluded (no identity match).
  const auto q = MakeHistory(dataset_.domain(), {{0, ValueSet{9}}}, 77);
  const TindParams params{0.0, 0, weight_.get()};
  const auto results = index_->Search(q, params);
  EXPECT_TRUE(std::count(results.begin(), results.end(), 3));
}

TEST_F(TindIndexSearchTest, StatsPopulated) {
  QueryStats stats;
  const TindParams params{0.0, 0, weight_.get()};
  const auto results = index_->Search(dataset_.attribute(0), params, &stats);
  EXPECT_TRUE(stats.used_prefilter);
  EXPECT_TRUE(stats.used_slices);
  EXPECT_EQ(stats.num_results, results.size());
  EXPECT_GE(stats.initial_candidates, stats.after_slices);
  EXPECT_GE(stats.after_slices, stats.after_exact_check);
  EXPECT_GE(stats.after_exact_check, stats.num_results);
  EXPECT_GT(stats.elapsed_ms, 0.0);
}

TEST_F(TindIndexSearchTest, QueryDeltaAboveBuildDeltaSkipsSlices) {
  QueryStats stats;
  const TindParams params{0.0, 10, weight_.get()};  // Build delta is 3.
  (void)index_->Search(dataset_.attribute(0), params, &stats);
  EXPECT_FALSE(stats.used_slices);
  // Results must still be exact.
  const auto results = index_->Search(dataset_.attribute(0), params);
  for (AttributeId id = 1; id < dataset_.size(); ++id) {
    const bool expected =
        ValidateTind(dataset_.attribute(0), dataset_.attribute(id), params,
                     dataset_.domain());
    EXPECT_EQ(static_cast<bool>(std::count(results.begin(), results.end(), id)),
              expected)
        << "id " << id;
  }
}

TEST_F(TindIndexSearchTest, ParallelValidationMatchesSerial) {
  ThreadPool pool(4);
  const TindParams params{5.0, 3, weight_.get()};
  const auto serial = index_->Search(dataset_.attribute(0), params);
  const auto parallel =
      index_->Search(dataset_.attribute(0), params, nullptr, &pool);
  EXPECT_EQ(serial, parallel);
}

TEST_F(TindIndexSearchTest, ReverseSearchFindsSubsets) {
  // Reverse of attribute 1 ({1,2,3} always): who is contained in it?
  // Q (={1},{1,2}) strictly; B from birth-day-5 asymmetry is on Q's side
  // here: B={1,2} days 5.., empty before -> contained strictly.
  const TindParams params{0.0, 0, weight_.get()};
  const auto results = index_->ReverseSearch(dataset_.attribute(1), params);
  EXPECT_TRUE(std::count(results.begin(), results.end(), 0));
  EXPECT_TRUE(std::count(results.begin(), results.end(), 2));
  EXPECT_FALSE(std::count(results.begin(), results.end(), 3));
  EXPECT_FALSE(std::count(results.begin(), results.end(), 4));
}

TEST_F(TindIndexSearchTest, ReverseMatchesForwardGroundTruth) {
  // Cross-check: id in Reverse(Q) iff Q in Search(id) ... i.e. both equal
  // exact validation.
  for (const double eps : {0.0, 3.0, 10.0}) {
    for (const int64_t delta : {0, 2}) {
      const TindParams params{eps, delta, weight_.get()};
      for (AttributeId q = 0; q < dataset_.size(); ++q) {
        const auto reverse = index_->ReverseSearch(dataset_.attribute(q), params);
        for (AttributeId a = 0; a < dataset_.size(); ++a) {
          if (a == q) continue;
          const bool expected =
              ValidateTind(dataset_.attribute(a), dataset_.attribute(q), params,
                           dataset_.domain());
          EXPECT_EQ(static_cast<bool>(
                        std::count(reverse.begin(), reverse.end(), a)),
                    expected)
              << "eps=" << eps << " delta=" << delta << " q=" << q << " a=" << a;
        }
      }
    }
  }
}

TEST_F(TindIndexSearchTest, ReverseEpsilonAboveBuildSkipsPrefilter) {
  QueryStats stats;
  const TindParams params{50.0, 0, weight_.get()};  // Build eps is 5.
  (void)index_->ReverseSearch(dataset_.attribute(1), params, &stats);
  EXPECT_FALSE(stats.used_prefilter);
  // Still exact.
  const auto results = index_->ReverseSearch(dataset_.attribute(1), params);
  for (AttributeId a = 0; a < dataset_.size(); ++a) {
    if (a == 1) continue;
    const bool expected = ValidateTind(dataset_.attribute(a),
                                       dataset_.attribute(1), params,
                                       dataset_.domain());
    EXPECT_EQ(static_cast<bool>(std::count(results.begin(), results.end(), a)),
              expected);
  }
}

TEST(TindIndexNoReverseTest, ReverseWithoutIndexStillCorrect) {
  const Dataset dataset = SmallDataset();
  const ConstantWeight w(100);
  TindIndexOptions opts;
  opts.bloom_bits = 256;
  opts.num_hashes = 2;
  opts.num_slices = 2;
  opts.delta = 2;
  opts.epsilon = 3.0;
  opts.weight = &w;
  opts.build_reverse_index = false;
  const auto index = TindIndex::Build(dataset, opts);
  ASSERT_TRUE(index.ok());
  QueryStats stats;
  const TindParams params{0.0, 0, &w};
  const auto results =
      (*index)->ReverseSearch(dataset.attribute(1), params, &stats);
  EXPECT_FALSE(stats.used_prefilter);
  EXPECT_TRUE(std::count(results.begin(), results.end(), 0));
}

TEST(TindIndexEmptySlicesTest, ZeroSlicesStillExact) {
  const Dataset dataset = SmallDataset();
  const ConstantWeight w(100);
  TindIndexOptions opts;
  opts.bloom_bits = 256;
  opts.num_hashes = 2;
  opts.num_slices = 0;
  opts.delta = 3;
  opts.epsilon = 3.0;
  opts.weight = &w;
  const auto index = TindIndex::Build(dataset, opts);
  ASSERT_TRUE(index.ok());
  const TindParams params{0.0, 0, &w};
  const auto results = (*index)->Search(dataset.attribute(0), params);
  EXPECT_EQ(results, (std::vector<AttributeId>{1}));
}

}  // namespace
}  // namespace tind
