#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/wire.h"

/// \file wire_test.cc
/// The serving wire protocol: frame encode/decode round-trips, corruption
/// rejection (bad magic, version, oversize, CRC bit flips), payload codec
/// round-trips, and the socket helpers' typed error taxonomy (idle
/// DeadlineExceeded vs slow-loris/truncation IOError).

namespace tind::serve {
namespace {

TEST(WireFrameTest, HeaderRoundTrip) {
  const std::string frame = EncodeFrame(MessageType::kSearch, 42, "payload");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 7);
  auto header = DecodeFrameHeader(
      std::string_view(frame).substr(0, kFrameHeaderBytes));
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->magic, kFrameMagic);
  EXPECT_EQ(header->version, kWireVersion);
  EXPECT_EQ(header->type, MessageType::kSearch);
  EXPECT_EQ(header->request_id, 42u);
  EXPECT_EQ(header->payload_bytes, 7u);
  EXPECT_TRUE(VerifyFrameCrc(*header,
                             std::string_view(frame).substr(0,
                                                            kFrameHeaderBytes),
                             "payload")
                  .ok());
}

TEST(WireFrameTest, MagicOnTheWireIsAscii) {
  const std::string frame = EncodeFrame(MessageType::kPing, 0, "");
  EXPECT_EQ(frame.substr(0, 4), "TIND");
}

TEST(WireFrameTest, RejectsBadMagicVersionAndOversize) {
  std::string frame = EncodeFrame(MessageType::kPing, 1, "");
  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  EXPECT_TRUE(DecodeFrameHeader(std::string_view(bad_magic)
                                    .substr(0, kFrameHeaderBytes))
                  .status()
                  .IsInvalidArgument());
  std::string bad_version = frame;
  bad_version[4] = 9;
  EXPECT_TRUE(DecodeFrameHeader(std::string_view(bad_version)
                                    .substr(0, kFrameHeaderBytes))
                  .status()
                  .IsInvalidArgument());
  std::string oversize = frame;
  oversize[16] = '\xff';
  oversize[17] = '\xff';
  oversize[18] = '\xff';
  oversize[19] = '\x7f';
  EXPECT_TRUE(DecodeFrameHeader(std::string_view(oversize)
                                    .substr(0, kFrameHeaderBytes))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DecodeFrameHeader("short").status().IsInvalidArgument());
}

TEST(WireFrameTest, EveryBitFlipFailsTheCrc) {
  const std::string frame = EncodeFrame(MessageType::kSearch, 7, "abc");
  for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
    std::string flipped = frame;
    flipped[bit / 8] = static_cast<char>(flipped[bit / 8] ^ (1 << (bit % 8)));
    const std::string_view header_bytes =
        std::string_view(flipped).substr(0, kFrameHeaderBytes);
    auto header = DecodeFrameHeader(header_bytes);
    if (!header.ok()) continue;  // Structural rejection is fine too.
    const Status crc = VerifyFrameCrc(
        *header, header_bytes,
        std::string_view(flipped).substr(kFrameHeaderBytes));
    EXPECT_FALSE(crc.ok()) << "undetected bit flip at " << bit;
  }
}

TEST(WirePayloadTest, SearchRequestRoundTrip) {
  SearchRequest request;
  request.attribute = 17;
  request.window_end = 25;
  request.epsilon = 2.75;
  request.delta = -3;
  request.deadline_ms = 150;
  request.allow_degraded = true;
  auto decoded = DecodeSearchRequest(EncodeSearchRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->attribute, 17u);
  EXPECT_EQ(decoded->window_end, 25u);
  EXPECT_DOUBLE_EQ(decoded->epsilon, 2.75);
  EXPECT_EQ(decoded->delta, -3);
  EXPECT_EQ(decoded->deadline_ms, 150u);
  EXPECT_TRUE(decoded->allow_degraded);
  // Truncated and over-long payloads are both malformed.
  const std::string bytes = EncodeSearchRequest(request);
  EXPECT_TRUE(DecodeSearchRequest(bytes.substr(0, bytes.size() - 1))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DecodeSearchRequest(bytes + "x").status().IsInvalidArgument());
}

TEST(WirePayloadTest, SearchResponseRoundTrip) {
  SearchResponse response;
  response.degraded = true;
  response.ids = {1, 5, 9, 100000};
  auto decoded = DecodeSearchResponse(EncodeSearchResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->degraded);
  EXPECT_EQ(decoded->ids, response.ids);
  // A count that promises more ids than the payload carries is malformed.
  std::string bytes = EncodeSearchResponse(response);
  bytes.resize(bytes.size() - 2);
  EXPECT_TRUE(DecodeSearchResponse(bytes).status().IsInvalidArgument());
}

TEST(WirePayloadTest, DiscoveryResponseRoundTrip) {
  DiscoveryResponse response;
  response.pairs = {{1, 2}, {1, 7}, {3, 4}};
  auto decoded = DecodeDiscoveryResponse(EncodeDiscoveryResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->degraded);
  EXPECT_EQ(decoded->pairs, response.pairs);
}

TEST(WirePayloadTest, ErrorResponseCarriesTheStatusTaxonomy) {
  const std::vector<Status> statuses = {
      Status::InvalidArgument("bad attribute"),
      Status::ResourceExhausted("overloaded: queue full"),
      Status::OutOfMemory("overloaded: budget"),
      Status::DeadlineExceeded("too slow"),
      Status::NotFound("no such thing"),
  };
  for (const Status& status : statuses) {
    const Status decoded = DecodeErrorResponse(EncodeErrorResponse(status));
    EXPECT_EQ(decoded.code(), status.code()) << status.ToString();
    EXPECT_EQ(decoded.message(), status.message());
  }
  EXPECT_TRUE(DecodeErrorResponse("x").IsInvalidArgument());
}

#if defined(__unix__) || defined(__APPLE__)

class WireSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto listen_fd = ListenTcp(0);
    ASSERT_TRUE(listen_fd.ok()) << listen_fd.status().ToString();
    listen_fd_ = *listen_fd;
    auto port = LocalPort(listen_fd_);
    ASSERT_TRUE(port.ok());
    auto client = ConnectTcp("127.0.0.1", *port, 1000);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    client_fd_ = *client;
    auto server = AcceptConnection(listen_fd_, 1000);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_fd_ = *server;
  }

  void TearDown() override {
    CloseFd(client_fd_);
    CloseFd(server_fd_);
    CloseFd(listen_fd_);
  }

  int listen_fd_ = -1;
  int client_fd_ = -1;
  int server_fd_ = -1;
};

TEST_F(WireSocketTest, FrameRoundTripOverTcp) {
  ASSERT_TRUE(
      SendFrame(client_fd_, MessageType::kSearch, 99, "hello", 1000).ok());
  auto frame = RecvFrame(server_fd_, 1000, 1000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->header.type, MessageType::kSearch);
  EXPECT_EQ(frame->header.request_id, 99u);
  EXPECT_EQ(frame->payload, "hello");
}

TEST_F(WireSocketTest, IdleSocketIsDeadlineExceeded) {
  const auto frame = RecvFrame(server_fd_, 30, 1000);
  EXPECT_TRUE(frame.status().IsDeadlineExceeded())
      << frame.status().ToString();
}

TEST_F(WireSocketTest, SlowLorisIsAnIOError) {
  // Send only 5 bytes of a frame, then stall: the progress timeout must
  // cut the receiver loose with an IOError, not let it wait forever.
  const std::string frame = EncodeFrame(MessageType::kSearch, 1, "abc");
  ASSERT_TRUE(SendAll(client_fd_, std::string_view(frame).substr(0, 5), 1000)
                  .ok());
  const auto received = RecvFrame(server_fd_, 1000, 50);
  EXPECT_TRUE(received.status().IsIOError()) << received.status().ToString();
  EXPECT_NE(received.status().message().find("stalled"), std::string::npos);
}

TEST_F(WireSocketTest, TruncatedFrameIsAnIOError) {
  const std::string frame = EncodeFrame(MessageType::kSearch, 1, "abcdef");
  ASSERT_TRUE(SendAll(client_fd_, std::string_view(frame).substr(0, 10), 1000)
                  .ok());
  CloseFd(client_fd_);
  client_fd_ = -1;
  const auto received = RecvFrame(server_fd_, 1000, 1000);
  EXPECT_TRUE(received.status().IsIOError()) << received.status().ToString();
}

TEST_F(WireSocketTest, CleanEofIsConnectionClosed) {
  CloseFd(client_fd_);
  client_fd_ = -1;
  const auto received = RecvFrame(server_fd_, 1000, 1000);
  ASSERT_TRUE(received.status().IsIOError());
  EXPECT_NE(received.status().message().find("connection closed"),
            std::string::npos);
}

TEST_F(WireSocketTest, CorruptFrameOverTcpIsInvalidArgument) {
  std::string frame = EncodeFrame(MessageType::kSearch, 5, "payload");
  frame[kFrameHeaderBytes + 2] ^= 0x10;  // Flip a payload bit.
  ASSERT_TRUE(SendAll(client_fd_, frame, 1000).ok());
  const auto received = RecvFrame(server_fd_, 1000, 1000);
  EXPECT_TRUE(received.status().IsInvalidArgument())
      << received.status().ToString();
}

#endif  // defined(__unix__) || defined(__APPLE__)

}  // namespace
}  // namespace tind::serve
