#include "wiki/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "tind/validator.h"
#include "wiki/preprocess.h"

namespace tind::wiki {
namespace {

GeneratorOptions SmallOptions(uint64_t seed = 7) {
  GeneratorOptions opts;
  opts.seed = seed;
  opts.num_days = 600;
  opts.num_families = 6;
  opts.num_noise_attributes = 30;
  opts.num_catchall_attributes = 2;
  opts.shared_vocabulary = 120;
  opts.entities_per_family_pool = 80;
  return opts;
}

TEST(GeneratorTest, DeterministicInSeed) {
  const WikiGenerator gen(SmallOptions(11));
  auto a = gen.GenerateDataset();
  auto b = gen.GenerateDataset();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->dataset.size(), b->dataset.size());
  for (size_t i = 0; i < a->dataset.size(); ++i) {
    const auto& ha = a->dataset.attribute(static_cast<AttributeId>(i));
    const auto& hb = b->dataset.attribute(static_cast<AttributeId>(i));
    ASSERT_EQ(ha.change_timestamps(), hb.change_timestamps());
    ASSERT_EQ(ha.versions().size(), hb.versions().size());
  }
  EXPECT_EQ(a->ground_truth.pairs(), b->ground_truth.pairs());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto a = WikiGenerator(SmallOptions(1)).GenerateDataset();
  auto b = WikiGenerator(SmallOptions(2)).GenerateDataset();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Extremely unlikely to coincide.
  EXPECT_NE(a->dataset.ComputeStats().total_versions,
            b->dataset.ComputeStats().total_versions);
}

TEST(GeneratorTest, DatasetPassesMirrorFilters) {
  auto result = WikiGenerator(SmallOptions()).GenerateDataset();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->dataset.size(), 20u);
  for (const auto& attr : result->dataset.attributes()) {
    EXPECT_GE(attr.num_versions(), 5u) << attr.meta().FullName();
    EXPECT_GE(attr.MedianCardinality(), 5u) << attr.meta().FullName();
  }
  EXPECT_EQ(result->attribute_names.size(), result->dataset.size());
  EXPECT_EQ(result->scripts_total,
            result->dataset.size() + result->scripts_filtered);
}

TEST(GeneratorTest, GroundTruthNonEmptyAndWellFormed) {
  auto result = WikiGenerator(SmallOptions()).GenerateDataset();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->ground_truth.size(), 5u);
  const auto id_pairs =
      result->ground_truth.ToIdPairs(result->attribute_names);
  EXPECT_GT(id_pairs.size(), 0u);
  for (const auto& [lhs, rhs] : id_pairs) {
    EXPECT_NE(lhs, rhs);
    EXPECT_LT(lhs, result->dataset.size());
    EXPECT_LT(rhs, result->dataset.size());
  }
}

TEST(GeneratorTest, GenuinePairsAreRelaxedTinds) {
  // The planted inclusions must be discoverable with the paper's default
  // relaxation (eps=3, delta=7) for a decent majority — lags and transient
  // errors are bounded by construction (variants excepted).
  auto result = WikiGenerator(SmallOptions()).GenerateDataset();
  ASSERT_TRUE(result.ok());
  const Dataset& dataset = result->dataset;
  const ConstantWeight w(dataset.domain().num_timestamps());
  const auto id_pairs = result->ground_truth.ToIdPairs(result->attribute_names);
  ASSERT_GT(id_pairs.size(), 0u);
  size_t valid = 0;
  for (const auto& [lhs, rhs] : id_pairs) {
    const TindParams params{6.0, 10, &w};
    if (ValidateTind(dataset.attribute(lhs), dataset.attribute(rhs), params,
                     dataset.domain())) {
      ++valid;
    }
  }
  EXPECT_GT(static_cast<double>(valid) / id_pairs.size(), 0.5);
}

TEST(GeneratorTest, GenuinePairsMostlyNotStrictTinds) {
  // Errors and lags mean strictness should fail for a good share of the
  // genuine pairs — the motivation for the relaxations.
  auto result = WikiGenerator(SmallOptions()).GenerateDataset();
  ASSERT_TRUE(result.ok());
  const Dataset& dataset = result->dataset;
  const ConstantWeight w(dataset.domain().num_timestamps());
  const auto id_pairs = result->ground_truth.ToIdPairs(result->attribute_names);
  size_t strict_valid = 0;
  for (const auto& [lhs, rhs] : id_pairs) {
    const TindParams params{0.0, 0, &w};
    if (ValidateTind(dataset.attribute(lhs), dataset.attribute(rhs), params,
                     dataset.domain())) {
      ++strict_valid;
    }
  }
  EXPECT_LT(strict_valid, id_pairs.size());
}

TEST(GeneratorTest, ChangeCountsSpreadAcrossBuckets) {
  auto result = WikiGenerator(SmallOptions()).GenerateDataset();
  ASSERT_TRUE(result.ok());
  size_t low = 0, mid = 0, high = 0;
  for (const auto& attr : result->dataset.attributes()) {
    const size_t c = attr.num_changes();
    if (c < 8) {
      ++low;
    } else if (c < 16) {
      ++mid;
    } else {
      ++high;
    }
  }
  EXPECT_GT(low, 0u);
  EXPECT_GT(mid, 0u);
  EXPECT_GT(high, 0u);
}

TEST(GeneratorTest, RejectsTinyDomain) {
  GeneratorOptions opts = SmallOptions();
  opts.num_days = 5;
  EXPECT_TRUE(
      WikiGenerator(opts).GenerateDataset().status().IsInvalidArgument());
  EXPECT_TRUE(
      WikiGenerator(opts).GenerateRawCorpus().status().IsInvalidArgument());
}

TEST(GeneratorTest, ValidateRejectsInconsistentKnobs) {
  const auto rejects = [](void (*mutate)(GeneratorOptions*)) {
    GeneratorOptions opts = SmallOptions();
    mutate(&opts);
    const Status st = ValidateGeneratorOptions(opts);
    return !st.ok() && st.IsInvalidArgument();
  };
  EXPECT_TRUE(rejects([](GeneratorOptions* o) { o->chain_probability = 1.5; }));
  EXPECT_TRUE(rejects([](GeneratorOptions* o) { o->burstiness = 1.0; }));
  EXPECT_TRUE(rejects([](GeneratorOptions* o) { o->burstiness = -0.1; }));
  EXPECT_TRUE(rejects([](GeneratorOptions* o) { o->zipf_skew = -1.0; }));
  EXPECT_TRUE(rejects([](GeneratorOptions* o) { o->birth_fraction = 0.0; }));
  EXPECT_TRUE(rejects([](GeneratorOptions* o) {
    o->subset_fraction_min = 0.9;
    o->subset_fraction_max = 0.5;
  }));
  EXPECT_TRUE(rejects([](GeneratorOptions* o) { o->shared_vocabulary = 0; }));
  EXPECT_TRUE(rejects([](GeneratorOptions* o) {
    o->num_noise_attributes = 10;
    o->shared_vocabulary = o->noise_cardinality_max - 1;
  }));
  EXPECT_TRUE(rejects([](GeneratorOptions* o) {
    o->num_adversarial_attributes = 4;
    o->adversarial_cardinality = 0;
  }));
  EXPECT_TRUE(rejects([](GeneratorOptions* o) {
    o->noise_attributes_per_table = 0;
  }));
}

TEST(GeneratorTest, ValidateAcceptsDefaultsAndNewKnobs) {
  EXPECT_TRUE(ValidateGeneratorOptions(SmallOptions()).ok());
  GeneratorOptions opts = SmallOptions();
  opts.burstiness = 0.9;
  opts.num_adversarial_attributes = 8;
  opts.adversarial_cardinality = 16;
  opts.adversarial_changes_mean = 32.0;
  EXPECT_TRUE(ValidateGeneratorOptions(opts).ok());
}

TEST(GeneratorRawTest, RevisionsStrictlyIncreasing) {
  auto result = WikiGenerator(SmallOptions()).GenerateRawCorpus();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->raw.tables.size(), 10u);
  for (const auto& table : result->raw.tables) {
    ASSERT_FALSE(table.versions.empty());
    for (size_t i = 1; i < table.versions.size(); ++i) {
      EXPECT_LT(table.versions[i - 1].revision_minute,
                table.versions[i].revision_minute)
          << table.page_title;
    }
    for (const auto& v : table.versions) {
      EXPECT_EQ(v.headers.size(), v.columns.size());
      EXPECT_GE(v.revision_minute, 0);
      EXPECT_LT(v.revision_minute, result->raw.num_days * kMinutesPerDay);
    }
  }
}

TEST(GeneratorRawTest, ContainsLinkMarkupAndVandalism) {
  auto result = WikiGenerator(SmallOptions()).GenerateRawCorpus();
  ASSERT_TRUE(result.ok());
  bool saw_link = false, saw_vandal = false, saw_numeric_header = false;
  for (const auto& table : result->raw.tables) {
    for (const auto& v : table.versions) {
      for (const auto& h : v.headers) {
        if (h == "Year") saw_numeric_header = true;
      }
      for (const auto& col : v.columns) {
        for (const auto& cell : col) {
          if (cell.rfind("[[", 0) == 0) saw_link = true;
          if (cell.rfind("VANDAL", 0) == 0) saw_vandal = true;
        }
      }
    }
  }
  EXPECT_TRUE(saw_link);
  EXPECT_TRUE(saw_vandal);
  EXPECT_TRUE(saw_numeric_header);
}

TEST(GeneratorRawTest, PipelineRecoversGenerator) {
  // End-to-end: raw corpus -> preprocessing -> dataset whose attributes and
  // planted inclusions match the direct path's.
  const WikiGenerator gen(SmallOptions(21));
  auto raw = gen.GenerateRawCorpus();
  ASSERT_TRUE(raw.ok());
  auto direct = gen.GenerateDataset();
  ASSERT_TRUE(direct.ok());

  auto processed = PreprocessRawCorpus(raw->raw, PreprocessOptions());
  ASSERT_TRUE(processed.ok());
  // Vandalism and numeric decoys must have been filtered.
  EXPECT_EQ(processed->dataset.dictionary().Lookup("VANDAL 0"),
            kInvalidValueId);
  for (const auto& attr : processed->dataset.attributes()) {
    EXPECT_NE(attr.meta().column, "Year");
  }
  // The recovered attribute count is in the same ballpark as the direct
  // path (renames/aggregation may shift a few across filter thresholds).
  const double ratio = static_cast<double>(processed->dataset.size()) /
                       static_cast<double>(direct->dataset.size());
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.3);
  // Ground-truth pairs must map onto the processed corpus too.
  const auto id_pairs =
      raw->ground_truth.ToIdPairs(processed->attribute_names);
  EXPECT_GT(id_pairs.size(), 0u);
}

TEST(GroundTruthTest, LookupAndRemap) {
  GroundTruth truth;
  truth.AddGenuine("a", "b");
  truth.AddGenuine("a", "c");
  EXPECT_TRUE(truth.IsGenuine("a", "b"));
  EXPECT_FALSE(truth.IsGenuine("b", "a"));
  EXPECT_EQ(truth.size(), 2u);
  const auto ids = truth.ToIdPairs({"c", "a", "zzz"});
  // Only (a, c) maps: "b" is absent.
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), (std::pair<AttributeId, AttributeId>{1, 0}));
}

}  // namespace
}  // namespace tind::wiki
