#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>

#include "test_util.h"
#include "tind/index.h"
#include "tind/validator.h"

namespace tind {
namespace {

/// End-to-end exactness property: for random datasets and any sound
/// (ε, δ, m, k, strategy) combination, index-based search must return
/// EXACTLY the attributes the naive validator accepts — the Bloom pruning
/// may only remove work, never answers.
class IndexExactnessTest
    : public ::testing::TestWithParam<
          std::tuple<uint64_t, size_t, size_t, int64_t, double, SliceStrategy>> {
};

TEST_P(IndexExactnessTest, SearchMatchesNaiveScan) {
  const auto [seed, bloom_bits, num_slices, delta, eps, strategy] = GetParam();
  Rng rng(seed);
  const int64_t n_days = 120;
  Dataset dataset(TimeDomain(n_days), std::make_shared<ValueDictionary>());
  const size_t n_attrs = 40;
  for (size_t i = 0; i < n_attrs; ++i) {
    dataset.Add(testutil::RandomHistory(dataset.domain(), &rng, 25,
                                        static_cast<AttributeId>(i), 6, 8));
  }
  const ConstantWeight w(n_days);
  TindIndexOptions opts;
  opts.bloom_bits = bloom_bits;
  opts.num_hashes = 2;
  opts.num_slices = num_slices;
  opts.delta = delta;
  opts.epsilon = eps;
  opts.strategy = strategy;
  opts.weight = &w;
  opts.seed = seed * 31 + 7;
  auto index_result = TindIndex::Build(dataset, opts);
  ASSERT_TRUE(index_result.ok());
  const TindIndex& index = **index_result;

  const TindParams params{eps, delta, &w};
  for (AttributeId q = 0; q < 10; ++q) {
    const auto results = index.Search(dataset.attribute(q), params);
    std::vector<AttributeId> expected;
    for (AttributeId a = 0; a < n_attrs; ++a) {
      if (a == q) continue;
      if (ValidateTindNaive(dataset.attribute(q), dataset.attribute(a), params,
                            dataset.domain())) {
        expected.push_back(a);
      }
    }
    ASSERT_EQ(results, expected)
        << "q=" << q << " seed=" << seed << " m=" << bloom_bits
        << " k=" << num_slices << " delta=" << delta << " eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexExactnessTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2),
                       ::testing::Values<size_t>(128, 512),
                       ::testing::Values<size_t>(0, 3, 8),
                       ::testing::Values<int64_t>(0, 5),
                       ::testing::Values(0.0, 4.0),
                       ::testing::Values(SliceStrategy::kRandom,
                                         SliceStrategy::kWeightedRandom)));

/// Queries may use smaller δ/ε than the index was built for (Section 4.4) —
/// results must stay exact.
class IndexParameterDeviationTest
    : public ::testing::TestWithParam<std::tuple<int64_t, double>> {};

TEST_P(IndexParameterDeviationTest, SmallerQueryParamsStayExact) {
  const auto [query_delta, query_eps] = GetParam();
  Rng rng(77);
  const int64_t n_days = 100;
  Dataset dataset(TimeDomain(n_days), std::make_shared<ValueDictionary>());
  for (size_t i = 0; i < 30; ++i) {
    dataset.Add(testutil::RandomHistory(dataset.domain(), &rng, 20,
                                        static_cast<AttributeId>(i), 6, 6));
  }
  const ConstantWeight w(n_days);
  TindIndexOptions opts;
  opts.bloom_bits = 256;
  opts.num_hashes = 2;
  opts.num_slices = 4;
  opts.delta = 8;     // Generous build-time values.
  opts.epsilon = 10.0;
  opts.weight = &w;
  auto index = TindIndex::Build(dataset, opts);
  ASSERT_TRUE(index.ok());

  const TindParams params{query_eps, query_delta, &w};
  for (AttributeId q = 0; q < 8; ++q) {
    const auto forward = (*index)->Search(dataset.attribute(q), params);
    const auto reverse = (*index)->ReverseSearch(dataset.attribute(q), params);
    for (AttributeId a = 0; a < dataset.size(); ++a) {
      if (a == q) continue;
      EXPECT_EQ(static_cast<bool>(std::count(forward.begin(), forward.end(), a)),
                ValidateTindNaive(dataset.attribute(q), dataset.attribute(a),
                                  params, dataset.domain()))
          << "forward q=" << q << " a=" << a;
      EXPECT_EQ(static_cast<bool>(std::count(reverse.begin(), reverse.end(), a)),
                ValidateTindNaive(dataset.attribute(a), dataset.attribute(q),
                                  params, dataset.domain()))
          << "reverse q=" << q << " a=" << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Deviations, IndexParameterDeviationTest,
                         ::testing::Combine(::testing::Values<int64_t>(0, 2, 8),
                                            ::testing::Values(0.0, 3.0, 10.0)));

/// Different weight functions at query time against an index built with the
/// constant weight (M_T is weight-agnostic; slices only prune).
TEST(IndexWeightDeviationTest, DecayWeightQueriesExact) {
  Rng rng(42);
  const int64_t n_days = 150;
  Dataset dataset(TimeDomain(n_days), std::make_shared<ValueDictionary>());
  for (size_t i = 0; i < 25; ++i) {
    dataset.Add(testutil::RandomHistory(dataset.domain(), &rng, 18,
                                        static_cast<AttributeId>(i), 7, 6));
  }
  const ConstantWeight build_w(n_days);
  TindIndexOptions opts;
  opts.bloom_bits = 512;
  opts.num_hashes = 2;
  opts.num_slices = 5;
  opts.delta = 4;
  opts.epsilon = 3.0;
  opts.weight = &build_w;
  auto index = TindIndex::Build(dataset, opts);
  ASSERT_TRUE(index.ok());

  const ExponentialDecayWeight query_w(n_days, 0.97);
  const TindParams params{1.5, 2, &query_w};
  for (AttributeId q = 0; q < 10; ++q) {
    const auto results = (*index)->Search(dataset.attribute(q), params);
    for (AttributeId a = 0; a < dataset.size(); ++a) {
      if (a == q) continue;
      EXPECT_EQ(static_cast<bool>(std::count(results.begin(), results.end(), a)),
                ValidateTindNaive(dataset.attribute(q), dataset.attribute(a),
                                  params, dataset.domain()))
          << "q=" << q << " a=" << a;
    }
  }
}

/// More tINDs must be found as ε or δ grow (Figure 8's monotonicity).
TEST(IndexMonotonicityTest, ResultCountMonotoneInRelaxation) {
  Rng rng(55);
  const int64_t n_days = 100;
  Dataset dataset(TimeDomain(n_days), std::make_shared<ValueDictionary>());
  for (size_t i = 0; i < 50; ++i) {
    dataset.Add(testutil::RandomHistory(dataset.domain(), &rng, 15,
                                        static_cast<AttributeId>(i), 5, 5));
  }
  const ConstantWeight w(n_days);
  TindIndexOptions opts;
  opts.bloom_bits = 512;
  opts.num_hashes = 2;
  opts.num_slices = 4;
  opts.delta = 16;
  opts.epsilon = 20.0;
  opts.weight = &w;
  auto index = TindIndex::Build(dataset, opts);
  ASSERT_TRUE(index.ok());

  size_t prev = 0;
  for (const double eps : {0.0, 2.0, 8.0, 20.0}) {
    size_t total = 0;
    const TindParams params{eps, 0, &w};
    for (AttributeId q = 0; q < 20; ++q) {
      total += (*index)->Search(dataset.attribute(q), params).size();
    }
    EXPECT_GE(total, prev) << "eps " << eps;
    prev = total;
  }
  prev = 0;
  for (const int64_t delta : {0, 2, 8, 16}) {
    size_t total = 0;
    const TindParams params{2.0, delta, &w};
    for (AttributeId q = 0; q < 20; ++q) {
      total += (*index)->Search(dataset.attribute(q), params).size();
    }
    EXPECT_GE(total, prev) << "delta " << delta;
    prev = total;
  }
}

}  // namespace
}  // namespace tind
