/// End-to-end integration: generator -> (raw -> preprocessing) -> index ->
/// search / reverse / all-pairs / baselines / evaluation, exercising the
/// whole pipeline the way the experiment harnesses do.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/k_many.h"
#include "baseline/static_ind.h"
#include "eval/grid_search.h"
#include "eval/precision_recall.h"
#include "tind/discovery.h"
#include "tind/index.h"
#include "tind/validator.h"
#include "wiki/corpus_io.h"
#include "wiki/generator.h"
#include "wiki/preprocess.h"

namespace tind {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    wiki::GeneratorOptions opts;
    opts.seed = 1234;
    opts.num_days = 800;
    opts.num_families = 10;
    opts.num_noise_attributes = 60;
    opts.num_catchall_attributes = 3;
    opts.shared_vocabulary = 150;
    opts.entities_per_family_pool = 120;
    auto generated = wiki::WikiGenerator(opts).GenerateDataset();
    ASSERT_TRUE(generated.ok());
    generated_ = new wiki::GeneratedDataset(std::move(*generated));
    weight_ = new ConstantWeight(generated_->dataset.domain().num_timestamps());

    TindIndexOptions index_opts;
    index_opts.bloom_bits = 1024;
    index_opts.num_hashes = 3;
    index_opts.num_slices = 8;
    index_opts.delta = 7;
    index_opts.epsilon = 3.0;
    index_opts.weight = weight_;
    auto index = TindIndex::Build(generated_->dataset, index_opts);
    ASSERT_TRUE(index.ok());
    index_ = index->release();
  }

  static void TearDownTestSuite() {
    delete index_;
    delete weight_;
    delete generated_;
    index_ = nullptr;
    weight_ = nullptr;
    generated_ = nullptr;
  }

  const Dataset& dataset() const { return generated_->dataset; }

  static wiki::GeneratedDataset* generated_;
  static ConstantWeight* weight_;
  static TindIndex* index_;
};

wiki::GeneratedDataset* IntegrationTest::generated_ = nullptr;
ConstantWeight* IntegrationTest::weight_ = nullptr;
TindIndex* IntegrationTest::index_ = nullptr;

TEST_F(IntegrationTest, SearchExactOnGeneratedCorpus) {
  const TindParams params{3.0, 7, weight_};
  // Spot-check 12 queries against the naive oracle over the full corpus.
  for (AttributeId q = 0; q < 12; ++q) {
    const auto results = index_->Search(dataset().attribute(q), params);
    std::vector<AttributeId> expected;
    for (AttributeId a = 0; a < dataset().size(); ++a) {
      if (a == q) continue;
      if (ValidateTind(dataset().attribute(q), dataset().attribute(a), params,
                       dataset().domain())) {
        expected.push_back(a);
      }
    }
    ASSERT_EQ(results, expected) << "query " << q;
  }
}

TEST_F(IntegrationTest, PruningFunnelIsEffective) {
  const TindParams params{3.0, 7, weight_};
  size_t total_candidates = 0, total_validations = 0;
  for (AttributeId q = 0; q < 50; ++q) {
    QueryStats stats;
    (void)index_->Search(dataset().attribute(q), params, &stats);
    total_candidates += dataset().size() - 1;
    total_validations += stats.validations;
  }
  // The index must prune the vast majority of candidates before exact
  // validation — this is its entire reason to exist.
  EXPECT_LT(total_validations, total_candidates / 5);
}

TEST_F(IntegrationTest, AllPairsFindsPlantedInclusions) {
  ThreadPool pool(4);
  const auto truth_ids =
      generated_->ground_truth.ToIdPairs(generated_->attribute_names);
  ASSERT_GT(truth_ids.size(), 0u);
  const std::set<IdPair> truth(truth_ids.begin(), truth_ids.end());

  const auto recall_at = [&](double eps, int64_t delta) {
    const TindParams params{eps, delta, weight_};
    const AllPairsResult all = DiscoverAllTinds(*index_, params, &pool);
    std::vector<IdPair> predicted;
    predicted.reserve(all.pairs.size());
    for (const TindPair& p : all.pairs) predicted.push_back({p.lhs, p.rhs});
    return ComputePrecisionRecall(predicted, truth).recall;
  };
  // A generous relaxation recovers the majority of planted inclusions
  // (only long-lived spelling variants stay out of reach)...
  EXPECT_GT(recall_at(8.0, 14), 0.5);
  // ...the paper's default operating point recovers a substantial share...
  EXPECT_GT(recall_at(3.0, 7), 0.25);
  // ...and strict tINDs recover far less (the Fig. 15 strict point).
  EXPECT_LT(recall_at(0.0, 0), recall_at(3.0, 7));
}

TEST_F(IntegrationTest, TindDiscoveryMorePreciseThanStatic) {
  // The paper's headline claim (Section 5.5): among static INDs at the
  // latest snapshot, the tIND-valid ones are genuine far more often.
  StaticIndOptions static_opts;
  static_opts.bloom_bits = 1024;
  auto static_discovery = StaticIndDiscovery::Build(dataset(), static_opts);
  ASSERT_TRUE(static_discovery.ok());
  ThreadPool pool(4);
  const AllPairsResult static_inds = (*static_discovery)->AllPairs(&pool);
  ASSERT_GT(static_inds.pairs.size(), 10u);

  const auto truth_ids =
      generated_->ground_truth.ToIdPairs(generated_->attribute_names);
  const std::set<IdPair> truth(truth_ids.begin(), truth_ids.end());

  const TindParams params{3.0, 7, weight_};
  size_t static_tp = 0, tind_predicted = 0, tind_tp = 0;
  for (const TindPair& p : static_inds.pairs) {
    const bool genuine = truth.count({p.lhs, p.rhs}) > 0;
    static_tp += genuine ? 1 : 0;
    if (ValidateTind(dataset().attribute(p.lhs), dataset().attribute(p.rhs),
                     params, dataset().domain())) {
      ++tind_predicted;
      tind_tp += genuine ? 1 : 0;
    }
  }
  ASSERT_GT(tind_predicted, 0u);
  const double static_precision =
      static_cast<double>(static_tp) / static_inds.pairs.size();
  const double tind_precision =
      static_cast<double>(tind_tp) / tind_predicted;
  EXPECT_GT(tind_precision, static_precision)
      << "tind " << tind_precision << " vs static " << static_precision;
}

TEST_F(IntegrationTest, KManySoundOnGeneratedCorpus) {
  KManyOptions opts;
  opts.bloom_bits = 1024;
  opts.num_snapshots = 8;
  auto km = KMany::Build(dataset(), opts);
  ASSERT_TRUE(km.ok());
  const TindParams params{3.0, 0, weight_};
  for (AttributeId q = 0; q < 6; ++q) {
    auto km_results = (*km)->Search(dataset().attribute(q), params);
    ASSERT_TRUE(km_results.ok());
    const auto index_results = index_->Search(dataset().attribute(q), params);
    EXPECT_EQ(*km_results, index_results) << "query " << q;
  }
}

TEST_F(IntegrationTest, GridSearchShowsRelaxationBenefit) {
  // Build a labelled sample from static INDs and verify the Fig. 15 shape:
  // some relaxed setting beats the static baseline's precision.
  StaticIndOptions static_opts;
  static_opts.bloom_bits = 1024;
  auto static_discovery = StaticIndDiscovery::Build(dataset(), static_opts);
  ASSERT_TRUE(static_discovery.ok());
  ThreadPool pool(4);
  const AllPairsResult static_inds = (*static_discovery)->AllPairs(&pool);
  const auto truth_ids =
      generated_->ground_truth.ToIdPairs(generated_->attribute_names);
  const std::set<IdPair> truth(truth_ids.begin(), truth_ids.end());

  std::vector<LabeledPair> labelled;
  for (size_t i = 0; i < static_inds.pairs.size() && labelled.size() < 400;
       ++i) {
    const TindPair& p = static_inds.pairs[i];
    labelled.push_back({{p.lhs, p.rhs}, truth.count({p.lhs, p.rhs}) > 0});
  }
  ASSERT_GT(labelled.size(), 20u);

  GridSearchOptions grid;
  grid.epsilons = {0, 3, 10};
  grid.deltas = {0, 7};
  grid.decay_bases = {1.0};
  grid.pool = &pool;
  const auto points = RunGridSearch(dataset(), labelled, grid);
  double static_precision = 0, best_precision = 0;
  for (const GridPoint& p : points) {
    if (p.variant == TindVariant::kStatic) {
      static_precision = p.pr.precision;
    } else if (p.pr.predicted > 0) {
      best_precision = std::max(best_precision, p.pr.precision);
    }
  }
  EXPECT_GT(best_precision, static_precision);
}

TEST_F(IntegrationTest, RawPipelineIndexRoundTrip) {
  // Small raw corpus through the full pipeline, then index and query it.
  wiki::GeneratorOptions opts;
  opts.seed = 99;
  opts.num_days = 400;
  opts.num_families = 4;
  opts.num_noise_attributes = 15;
  opts.num_catchall_attributes = 1;
  opts.shared_vocabulary = 80;
  auto raw = wiki::WikiGenerator(opts).GenerateRawCorpus();
  ASSERT_TRUE(raw.ok());
  auto processed = wiki::PreprocessRawCorpus(raw->raw, wiki::PreprocessOptions());
  ASSERT_TRUE(processed.ok());
  ASSERT_GT(processed->dataset.size(), 5u);

  const ConstantWeight w(processed->dataset.domain().num_timestamps());
  TindIndexOptions index_opts;
  index_opts.bloom_bits = 512;
  index_opts.num_slices = 4;
  index_opts.delta = 7;
  index_opts.epsilon = 3.0;
  index_opts.weight = &w;
  auto index = TindIndex::Build(processed->dataset, index_opts);
  ASSERT_TRUE(index.ok());
  const TindParams params{3.0, 7, &w};
  for (AttributeId q = 0; q < std::min<size_t>(8, processed->dataset.size());
       ++q) {
    const auto results =
        (*index)->Search(processed->dataset.attribute(q), params);
    for (const AttributeId a : results) {
      EXPECT_TRUE(ValidateTindNaive(processed->dataset.attribute(q),
                                    processed->dataset.attribute(a), params,
                                    processed->dataset.domain()));
    }
  }
}

TEST_F(IntegrationTest, SerializationPreservesQueryResults) {
  std::stringstream ss;
  ASSERT_TRUE(
      wiki::WriteDataset(dataset(), &generated_->ground_truth, ss).ok());
  auto loaded = wiki::ReadDataset(ss);
  ASSERT_TRUE(loaded.ok());
  const ConstantWeight w(loaded->dataset.domain().num_timestamps());
  TindIndexOptions opts;
  opts.bloom_bits = 1024;
  opts.num_slices = 8;
  opts.delta = 7;
  opts.epsilon = 3.0;
  opts.weight = &w;
  auto index2 = TindIndex::Build(loaded->dataset, opts);
  ASSERT_TRUE(index2.ok());
  const TindParams params{3.0, 7, &w};
  for (AttributeId q = 0; q < 10; ++q) {
    EXPECT_EQ(index_->Search(dataset().attribute(q), params),
              (*index2)->Search(loaded->dataset.attribute(q), params))
        << "query " << q;
  }
}

}  // namespace
}  // namespace tind
