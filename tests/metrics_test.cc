#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/memory_budget.h"
#include "common/thread_pool.h"
#include "obs/json.h"
#include "test_util.h"
#include "tind/discovery.h"
#include "wiki/corpus_io.h"

namespace tind::obs {
namespace {

/// Restores the global registry's enabled flag (tests toggle it).
class EnabledGuard {
 public:
  EnabledGuard() : previous_(MetricsRegistry::Global().enabled()) {}
  ~EnabledGuard() { MetricsRegistry::Global().set_enabled(previous_); }

 private:
  bool previous_;
};

TEST(CounterTest, AddAndReset) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test/counter");
  EXPECT_EQ(c->value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(c->name(), "test/counter");
}

TEST(GaugeTest, SetAddUpdateMax) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test/gauge");
  g->Set(1.5);
  EXPECT_DOUBLE_EQ(g->value(), 1.5);
  g->Add(0.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.0);
  g->UpdateMax(1.0);  // Smaller: no change.
  EXPECT_DOUBLE_EQ(g->value(), 2.0);
  g->UpdateMax(7.0);
  EXPECT_DOUBLE_EQ(g->value(), 7.0);
}

TEST(ObserveBoundsMacroTest, UsesExplicitBucketsAndGates) {
  EnabledGuard guard;
  MetricsRegistry::Global().set_enabled(false);
  // Disabled: the macro must not register the histogram or evaluate buckets.
  TIND_OBS_OBSERVE_BOUNDS("test/obs_bounds_gated", 5.0,
                          ExponentialBuckets(1, 2, 7));
  MetricsRegistry::Global().set_enabled(true);
  for (const double v : {1.0, 3.0, 64.0, 100.0}) {
    TIND_OBS_OBSERVE_BOUNDS("test/obs_bounds_macro", v,
                            ExponentialBuckets(1, 2, 7));
  }
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("test/obs_bounds_macro");
  ASSERT_NE(h, nullptr);
  // The explicit bounds won over the default latency bounds.
  EXPECT_EQ(h->bounds(), ExponentialBuckets(1, 2, 7));
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->max(), 100.0);
  const auto buckets = h->BucketCounts();
  ASSERT_EQ(buckets.size(), 8u);
  EXPECT_EQ(buckets.back(), 1u);  // 100 overflows the last bound (64).
}

TEST(HistogramTest, CountSumMinMaxMean) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test/hist", {1.0, 10.0, 100.0});
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->min(), 0.0);
  EXPECT_DOUBLE_EQ(h->max(), 0.0);
  h->Observe(5.0);
  h->Observe(0.5);
  h->Observe(50.0);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 55.5);
  EXPECT_DOUBLE_EQ(h->min(), 0.5);
  EXPECT_DOUBLE_EQ(h->max(), 50.0);
  EXPECT_DOUBLE_EQ(h->Mean(), 55.5 / 3);
}

TEST(HistogramTest, BucketAssignmentIncludesOverflow) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test/buckets", {1.0, 10.0});
  h->Observe(0.5);    // bucket 0 (<= 1).
  h->Observe(1.0);    // bucket 0 (bounds are upper-inclusive).
  h->Observe(2.0);    // bucket 1.
  h->Observe(1000.0); // overflow bucket.
  const std::vector<uint64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(HistogramTest, PercentileInterpolatesAndClamps) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test/pct", {10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) h->Observe(15.0);  // All in (10, 20].
  const double p50 = h->Percentile(50.0);
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.0), h->Percentile(0.0));  // No NaN.
  // Empty histogram percentiles are 0.
  Histogram* empty = registry.GetHistogram("test/pct_empty", {1.0});
  EXPECT_DOUBLE_EQ(empty->Percentile(99.0), 0.0);
}

TEST(HistogramTest, ResetZeroesEverything) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test/reset", {1.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Reset();
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.0);
  EXPECT_DOUBLE_EQ(h->min(), 0.0);
  EXPECT_DOUBLE_EQ(h->max(), 0.0);
  for (const uint64_t c : h->BucketCounts()) EXPECT_EQ(c, 0u);
}

TEST(BucketsTest, ExponentialBuckets) {
  const std::vector<double> b = ExponentialBuckets(1.0, 10.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 1000.0);
}

TEST(BucketsTest, DefaultLatencyBoundsAreSortedAndSpanMicrosToMinute) {
  const std::vector<double>& b = DefaultLatencyBoundsMs();
  ASSERT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.front(), 0.001);
  EXPECT_DOUBLE_EQ(b.back(), 60000.0);
  for (size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(MetricsRegistryTest, GetReturnsSamePointerAndSurvivesReset) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("a");
  Counter* c2 = registry.GetCounter("a");
  EXPECT_EQ(c1, c2);
  Gauge* g = registry.GetGauge("a");  // Same name, different kind: distinct.
  EXPECT_NE(static_cast<void*>(c1), static_cast<void*>(g));
  c1->Add(9);
  g->Set(3.0);
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("a"), c1);  // Registration survives...
  EXPECT_EQ(c1->value(), 0u);               // ...values do not.
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
}

TEST(MetricsRegistryTest, HistogramBoundsApplyOnFirstRegistrationOnly) {
  MetricsRegistry registry;
  Histogram* h1 = registry.GetHistogram("h", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("h", {99.0});
  EXPECT_EQ(h1, h2);
  ASSERT_EQ(h1->bounds().size(), 2u);
  // Empty bounds mean the default latency buckets.
  Histogram* latency = registry.GetHistogram("latency");
  EXPECT_EQ(latency->bounds().size(), DefaultLatencyBoundsMs().size());
}

TEST(MetricsRegistryTest, ConcurrentIncrementsFromThreadPool) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("concurrent/counter");
  Histogram* h = registry.GetHistogram("concurrent/hist", {8.0, 64.0});
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 1000;
  ThreadPool pool(8);
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    futures.push_back(pool.Submit([&registry, c, h, t] {
      for (int i = 0; i < kAddsPerTask; ++i) {
        c->Add(1);
        h->Observe(static_cast<double>(t % 100));
        // Concurrent registration of the same name must be race-free and
        // converge to one object.
        registry.GetCounter("concurrent/shared")->Add(1);
      }
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kTasks) * kAddsPerTask);
  EXPECT_EQ(registry.GetCounter("concurrent/shared")->value(),
            static_cast<uint64_t>(kTasks) * kAddsPerTask);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kTasks) * kAddsPerTask);
  uint64_t bucket_total = 0;
  for (const uint64_t b : h->BucketCounts()) bucket_total += b;
  EXPECT_EQ(bucket_total, h->count());
}

TEST(MetricsRegistryTest, JsonRoundTrip) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.GetCounter("probe/count")->Add(12345);
  registry.GetGauge("fill/ratio")->Set(0.25);
  Histogram* h = registry.GetHistogram("lat/ms", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);

  const std::string text = registry.ToJsonString();
  std::string error;
  const auto parsed = JsonValue::Parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  const JsonValue* counter = parsed->FindPath("counters.probe/count");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->AsInt(), 12345);

  const JsonValue* gauge = parsed->FindPath("gauges.fill/ratio");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->AsDouble(), 0.25);

  const JsonValue* hist = parsed->FindPath("histograms.lat/ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->FindPath("count")->AsInt(), 2);
  EXPECT_DOUBLE_EQ(hist->FindPath("sum")->AsDouble(), 5.5);
  const JsonValue* buckets = hist->FindPath("bucket_counts");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->size(), 3u);
  EXPECT_EQ(buckets->at(0).AsInt(), 1);
  EXPECT_EQ(buckets->at(1).AsInt(), 1);
  EXPECT_EQ(buckets->at(2).AsInt(), 0);

  // CSV export mentions every metric once per field row.
  const std::string csv = registry.ToCsv();
  EXPECT_NE(csv.find("counter,probe/count,value,12345"), std::string::npos);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(JsonValue::Parse("{", &error).has_value());
  EXPECT_FALSE(JsonValue::Parse("[1, 2,]", &error).has_value());
  EXPECT_FALSE(JsonValue::Parse("{\"a\": 1} trailing", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, ParsePreservesValuesAndEscapes) {
  const auto v = JsonValue::Parse(
      "{\"s\": \"a\\\"b\\\\c\\n\", \"n\": -1.5e2, \"t\": true, "
      "\"nil\": null, \"arr\": [1, 2, 3]}");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->Find("s")->AsString(), "a\"b\\c\n");
  EXPECT_DOUBLE_EQ(v->Find("n")->AsDouble(), -150.0);
  EXPECT_TRUE(v->Find("t")->AsBool());
  EXPECT_TRUE(v->Find("nil")->is_null());
  EXPECT_EQ(v->Find("arr")->size(), 3u);
  // Round-trip through Dump.
  const auto again = JsonValue::Parse(v->Dump(2));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->Find("s")->AsString(), "a\"b\\c\n");
}

TEST(ScopedTimerTest, RecordsHierarchicalSpans) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  {
    ScopedTimer outer("build", &registry);
    EXPECT_EQ(ScopedTimer::CurrentPath(), "build");
    {
      ScopedTimer inner("slices", &registry);
      EXPECT_EQ(ScopedTimer::CurrentPath(), "build/slices");
    }
    EXPECT_EQ(ScopedTimer::CurrentPath(), "build");
  }
  EXPECT_EQ(ScopedTimer::CurrentPath(), "");
  EXPECT_EQ(registry.GetHistogram("span/build")->count(), 1u);
  EXPECT_EQ(registry.GetHistogram("span/build/slices")->count(), 1u);
}

TEST(ScopedTimerTest, InertWhenRegistryDisabled) {
  MetricsRegistry registry;  // enabled() defaults to false.
  {
    ScopedTimer t("never", &registry);
    EXPECT_EQ(ScopedTimer::CurrentPath(), "");
  }
  const std::string json = registry.ToJsonString();
  EXPECT_EQ(json.find("span/never"), std::string::npos);
}

TEST(MacroTest, GatedByGlobalEnabledFlag) {
  EnabledGuard guard;
  MetricsRegistry& global = MetricsRegistry::Global();

  global.set_enabled(false);
  bool evaluated = false;
  TIND_OBS_COUNTER_ADD("macro_test/gated",
                       (evaluated = true, uint64_t{1}));
#if !TIND_OBS_DISABLED
  // Disabled registry: the delta expression must not even be evaluated.
  EXPECT_FALSE(evaluated);

  global.set_enabled(true);
  TIND_OBS_COUNTER_ADD("macro_test/gated", 2);
  TIND_OBS_COUNTER_ADD("macro_test/gated", 3);
  EXPECT_EQ(global.GetCounter("macro_test/gated")->value(), 5u);
  TIND_OBS_GAUGE_SET("macro_test/gauge", 1.5);
  TIND_OBS_GAUGE_MAX("macro_test/gauge", 9.0);
  EXPECT_DOUBLE_EQ(global.GetGauge("macro_test/gauge")->value(), 9.0);
  TIND_OBS_OBSERVE("macro_test/hist", 4.0);
  EXPECT_EQ(global.GetHistogram("macro_test/hist")->count(), 1u);
  // Clean up the values we left in the process-wide registry.
  global.Reset();
#else
  EXPECT_FALSE(evaluated);
#endif
}

#if !TIND_OBS_DISABLED
/// End-to-end coverage of the robustness counters: each one must be fed by
/// its real producer, not just registered.
TEST(RobustnessMetricsTest, ProducersFeedTheGlobalRegistry) {
  EnabledGuard guard;
  MetricsRegistry& global = MetricsRegistry::Global();
  global.Reset();
  global.set_enabled(true);

  // memory/budget_rejections: a capped budget refusing an allocation.
  tind::MemoryBudget budget(10);
  EXPECT_FALSE(budget.Allocate(20).ok());
  EXPECT_GE(global.GetCounter("memory/budget_rejections")->value(), 1u);

  // corpus_io/records_skipped: a lenient read skipping a corrupt record.
  {
    std::stringstream ss(
        "TIND-DATASET 1\ndomain 5\nvalues 1\nx\nattributes 1\n"
        "A bad\nfooter deadbeef\n");
    tind::wiki::ReadOptions lenient;
    lenient.strict = false;
    auto loaded = tind::wiki::ReadDataset(ss, lenient);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->skipped_records, 1u);
  }
  EXPECT_GE(global.GetCounter("corpus_io/records_skipped")->value(), 1u);

#if !TIND_FAULT_INJECTION_DISABLED
  // fault/injected_total: an armed injection point firing.
  ASSERT_TRUE(
      tind::FaultInjector::Global().Configure("metrics_test/fire=1", 1).ok());
  EXPECT_TRUE(TIND_FAULT_POINT("metrics_test/fire"));
  tind::FaultInjector::Global().Reset();
  EXPECT_GE(global.GetCounter("fault/injected_total")->value(), 1u);
#endif  // !TIND_FAULT_INJECTION_DISABLED

  // discovery/checkpoints_written: a checkpointed all-pairs run.
  {
    tind::Rng rng(5);
    tind::Dataset dataset(tind::TimeDomain(60),
                          std::make_shared<tind::ValueDictionary>());
    for (size_t i = 0; i < 10; ++i) {
      dataset.Add(tind::testutil::RandomHistory(
          dataset.domain(), &rng, 8, static_cast<tind::AttributeId>(i), 4, 4));
    }
    tind::ConstantWeight weight(60);
    tind::TindIndexOptions opts;
    opts.bloom_bits = 256;
    opts.num_hashes = 2;
    opts.num_slices = 2;
    opts.weight = &weight;
    auto index = tind::TindIndex::Build(dataset, opts);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    tind::DiscoveryOptions discovery;
    discovery.checkpoint_path =
        ::testing::TempDir() + "metrics-robustness-ckpt";
    discovery.checkpoint_interval = 1;
    const tind::TindParams params{3.0, 2, &weight};
    auto result = tind::DiscoverAllTinds(**index, params, discovery);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->checkpoints_written, 0u);
  }
  EXPECT_GE(global.GetCounter("discovery/checkpoints_written")->value(), 1u);

  global.Reset();
}
#endif  // !TIND_OBS_DISABLED

}  // namespace
}  // namespace tind::obs
