#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bloom/bloom_matrix.h"
#include "common/rng.h"
#include "common/simd.h"
#include "temporal/weights.h"
#include "tind/index.h"
#include "wiki/generator.h"

/// \file simd_differential_test.cc
/// Backend differential proof: every SIMD backend this binary compiled in
/// and this CPU supports must produce bit-identical results to the scalar
/// reference backend — on ragged BloomMatrix shapes straddling the word and
/// block boundaries, and on full index query funnels (results and
/// QueryStats) over generator corpora. Backends are pinned with
/// simd::ForceBackend, exactly how the CI forced-scalar legs pin scalar via
/// TIND_FORCE_SCALAR.

namespace tind {
namespace {

/// Restores auto dispatch even when an assertion fails mid-test.
class ScopedBackend {
 public:
  explicit ScopedBackend(simd::Backend backend)
      : forced_(simd::ForceBackend(backend)) {}
  ~ScopedBackend() { simd::ClearForcedBackend(); }
  bool forced() const { return forced_; }

 private:
  bool forced_;
};

ValueSet RandomValueSet(Rng* rng, size_t max_values, uint32_t universe) {
  std::vector<ValueId> values;
  const size_t n = 1 + rng->Uniform(max_values);
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(static_cast<ValueId>(rng->Uniform(universe)));
  }
  return ValueSet::FromUnsorted(std::move(values));
}

/// Ragged matrix shapes: column counts straddling the 64-bit word boundary,
/// the 16-word (1024-column) block boundary, and the 8-word padding group.
TEST(SimdMatrixDifferentialTest, RaggedShapesMatchScalarBitExactly) {
  Rng rng(314159);
  for (const size_t num_bits : {size_t{64}, size_t{256}}) {
    for (const size_t num_columns :
         {size_t{1}, size_t{5}, size_t{63}, size_t{64}, size_t{65},
          size_t{100}, size_t{512}, size_t{1000}, size_t{1024},
          size_t{1030}}) {
      // One matrix, built once: SetColumn hashing is backend-independent by
      // the DoubleHashManyMatchesReference property, so all backends query
      // identical bits.
      BloomMatrix matrix(num_bits, /*num_hashes=*/2, num_columns);
      std::vector<ValueSet> column_sets;
      column_sets.reserve(num_columns);
      for (size_t c = 0; c < num_columns; ++c) {
        column_sets.push_back(RandomValueSet(&rng, 30, 500));
        matrix.SetColumn(c, column_sets.back());
      }
      std::vector<BloomFilter> queries;
      for (int q = 0; q < 8; ++q) {
        queries.push_back(
            matrix.MakeQueryFilter(RandomValueSet(&rng, 10, 500)));
      }

      // Scalar reference answers for singles, batches, and ColumnContains.
      std::vector<BitVector> want_super, want_sub, want_bsuper, want_bsub;
      std::vector<std::vector<bool>> want_contains;
      {
        ScopedBackend guard(simd::Backend::kScalar);
        ASSERT_TRUE(guard.forced());
        for (const BloomFilter& q : queries) {
          BitVector super(num_columns, true), sub(num_columns, true);
          matrix.QuerySupersets(q, &super);
          matrix.QuerySubsets(q, &sub);
          want_super.push_back(std::move(super));
          want_sub.push_back(std::move(sub));
          std::vector<bool> contains;
          for (size_t c = 0; c < num_columns; ++c) {
            contains.push_back(matrix.ColumnContains(q, c));
          }
          want_contains.push_back(std::move(contains));
        }
        std::vector<BitVector> cand(queries.size(),
                                    BitVector(num_columns, true));
        std::vector<BloomProbe> probes;
        for (size_t i = 0; i < queries.size(); ++i) {
          probes.push_back(BloomProbe{&queries[i], &cand[i]});
        }
        matrix.QuerySupersetsBatch(probes);
        want_bsuper = cand;
        for (auto& c : cand) c = BitVector(num_columns, true);
        matrix.QuerySubsetsBatch(probes);
        want_bsub = cand;
      }

      for (const simd::Backend backend : simd::AvailableBackends()) {
        ScopedBackend guard(backend);
        ASSERT_TRUE(guard.forced());
        const std::string context =
            std::string("backend=") + std::string(simd::BackendName(backend)) +
            " bits=" + std::to_string(num_bits) +
            " cols=" + std::to_string(num_columns);
        for (size_t i = 0; i < queries.size(); ++i) {
          BitVector super(num_columns, true), sub(num_columns, true);
          matrix.QuerySupersets(queries[i], &super);
          matrix.QuerySubsets(queries[i], &sub);
          EXPECT_TRUE(super == want_super[i]) << context << " supersets " << i;
          EXPECT_TRUE(sub == want_sub[i]) << context << " subsets " << i;
          for (size_t c = 0; c < num_columns; ++c) {
            EXPECT_EQ(matrix.ColumnContains(queries[i], c),
                      want_contains[i][c])
                << context << " contains q=" << i << " c=" << c;
          }
        }
        std::vector<BitVector> cand(queries.size(),
                                    BitVector(num_columns, true));
        std::vector<BloomProbe> probes;
        for (size_t i = 0; i < queries.size(); ++i) {
          probes.push_back(BloomProbe{&queries[i], &cand[i]});
        }
        matrix.QuerySupersetsBatch(probes);
        for (size_t i = 0; i < queries.size(); ++i) {
          EXPECT_TRUE(cand[i] == want_bsuper[i])
              << context << " batch supersets " << i;
          cand[i] = BitVector(num_columns, true);
        }
        matrix.QuerySubsetsBatch(probes);
        for (size_t i = 0; i < queries.size(); ++i) {
          EXPECT_TRUE(cand[i] == want_bsub[i])
              << context << " batch subsets " << i;
        }
      }
    }
  }
}

void ExpectSameFunnel(const QueryStats& got, const QueryStats& want,
                      const std::string& context) {
  EXPECT_EQ(got.initial_candidates, want.initial_candidates) << context;
  EXPECT_EQ(got.after_slices, want.after_slices) << context;
  EXPECT_EQ(got.after_exact_check, want.after_exact_check) << context;
  EXPECT_EQ(got.num_results, want.num_results) << context;
  EXPECT_EQ(got.validations, want.validations) << context;
  EXPECT_EQ(got.used_slices, want.used_slices) << context;
  EXPECT_EQ(got.used_prefilter, want.used_prefilter) << context;
}

wiki::GeneratedDataset MakeCorpus(uint64_t seed) {
  wiki::GeneratorOptions gen;
  gen.seed = seed;
  gen.num_days = 120;
  gen.num_families = 3;
  gen.num_noise_attributes = 14;
  gen.num_drifter_attributes = 6;
  gen.num_catchall_attributes = 2;
  gen.shared_vocabulary = 100;
  gen.entities_per_family_pool = 60;
  auto generated = wiki::WikiGenerator(gen).GenerateDataset();
  if (!generated.ok()) std::abort();
  return std::move(*generated);
}

struct GridPoint {
  double epsilon;
  int64_t delta;
};

constexpr GridPoint kGrid[] = {
    {0.0, 0},   // Strict tIND.
    {3.0, 7},   // The paper's operating point (within build params).
};

/// Full-funnel differential: for each available backend, every Search /
/// ReverseSearch / batch variant must return the same attribute lists and
/// the same QueryStats as the scalar-forced run.
TEST(SimdIndexDifferentialTest, QueryFunnelsMatchScalarOnEveryBackend) {
  for (const uint64_t seed : {uint64_t{11}, uint64_t{12}}) {
    const wiki::GeneratedDataset corpus = MakeCorpus(seed);
    const Dataset& dataset = corpus.dataset;
    const int64_t n_days = dataset.domain().num_timestamps();
    const ConstantWeight w(n_days);

    TindIndexOptions opts;
    opts.bloom_bits = 512;
    opts.num_hashes = 2;
    opts.num_slices = 6;
    opts.delta = 7;
    opts.epsilon = 3.0;
    opts.build_reverse_index = true;
    opts.reverse_slices = 2;
    opts.weight = &w;
    opts.seed = seed * 13 + 1;
    auto built = TindIndex::Build(dataset, opts);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const TindIndex& index = **built;
    const size_t n_attrs = dataset.size();

    for (const GridPoint& point : kGrid) {
      const TindParams params{point.epsilon, point.delta, &w};
      for (const bool forward : {true, false}) {
        // Scalar reference funnels.
        std::vector<std::vector<AttributeId>> want(n_attrs);
        std::vector<QueryStats> want_stats(n_attrs);
        {
          ScopedBackend guard(simd::Backend::kScalar);
          ASSERT_TRUE(guard.forced());
          for (size_t q = 0; q < n_attrs; ++q) {
            const AttributeHistory& query =
                dataset.attribute(static_cast<AttributeId>(q));
            want[q] = forward
                          ? index.Search(query, params, &want_stats[q])
                          : index.ReverseSearch(query, params, &want_stats[q]);
          }
        }
        for (const simd::Backend backend : simd::AvailableBackends()) {
          ScopedBackend guard(backend);
          ASSERT_TRUE(guard.forced());
          const std::string base =
              "seed=" + std::to_string(seed) + " backend=" +
              std::string(simd::BackendName(backend)) +
              " eps=" + std::to_string(point.epsilon) +
              (forward ? " forward" : " reverse");
          std::vector<const AttributeHistory*> queries;
          for (size_t q = 0; q < n_attrs; ++q) {
            const AttributeHistory& query =
                dataset.attribute(static_cast<AttributeId>(q));
            queries.push_back(&query);
            QueryStats stats;
            const auto got = forward
                                 ? index.Search(query, params, &stats)
                                 : index.ReverseSearch(query, params, &stats);
            EXPECT_EQ(got, want[q]) << base << " q=" << q;
            ExpectSameFunnel(stats, want_stats[q],
                             base + " q=" + std::to_string(q));
          }
          std::vector<QueryStats> batch_stats;
          const auto batch =
              forward ? index.BatchSearch(queries, params, &batch_stats)
                      : index.BatchReverseSearch(queries, params, &batch_stats);
          ASSERT_EQ(batch.size(), n_attrs);
          for (size_t q = 0; q < n_attrs; ++q) {
            EXPECT_EQ(batch[q], want[q]) << base << " batch q=" << q;
            ExpectSameFunnel(batch_stats[q], want_stats[q],
                             base + " batch q=" + std::to_string(q));
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace tind
