/// Section-table order independence: a *.tsnap whose section table has been
/// permuted (entries shuffled; CRCs fixed up) must verify and load exactly
/// like the original — the loader locates sections by id, never by table
/// position. This is the freedom CompactSnapshot's section reuse relies on,
/// and what keeps the format forward-compatible with new section kinds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "snapshot/snapshot.h"
#include "snapshot/snapshot_format.h"
#include "temporal/weights.h"
#include "tind/index.h"
#include "wiki/generator.h"

namespace tind {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Applies `permute` to the section table in `bytes` and repairs the table
/// and header CRCs so the result is a valid artifact.
void PermuteSectionTable(
    std::string* bytes,
    const std::function<void(std::vector<snapshot::SectionEntry>*)>& permute) {
  snapshot::FileHeader header;
  ASSERT_GE(bytes->size(), sizeof(header));
  std::memcpy(&header, bytes->data(), sizeof(header));
  std::vector<snapshot::SectionEntry> table(header.section_count);
  const size_t table_bytes = table.size() * sizeof(snapshot::SectionEntry);
  ASSERT_GE(bytes->size(), sizeof(header) + table_bytes);
  std::memcpy(table.data(), bytes->data() + sizeof(header), table_bytes);

  permute(&table);

  std::memcpy(bytes->data() + sizeof(header), table.data(), table_bytes);
  header.section_table_crc = Crc32Of(
      std::string_view(bytes->data() + sizeof(header), table_bytes));
  header.header_crc = snapshot::HeaderCrc(header);
  std::memcpy(bytes->data(), &header, sizeof(header));
}

TEST(SnapshotPermutationTest, ShuffledSectionTableLoadsIdentically) {
  wiki::GeneratorOptions gen;
  gen.seed = 77;
  gen.num_days = 120;
  gen.num_families = 3;
  gen.num_noise_attributes = 12;
  gen.num_drifter_attributes = 5;
  gen.num_catchall_attributes = 1;
  gen.shared_vocabulary = 90;
  gen.entities_per_family_pool = 50;
  auto corpus = wiki::WikiGenerator(gen).GenerateDataset();
  ASSERT_TRUE(corpus.ok());
  const Dataset& dataset = corpus->dataset;
  const ConstantWeight weight(dataset.domain().num_timestamps());

  TindIndexOptions opts;
  opts.bloom_bits = 512;
  opts.num_hashes = 2;
  opts.num_slices = 4;
  opts.delta = 5;
  opts.epsilon = 3.0;
  opts.build_reverse_index = true;
  opts.reverse_slices = 2;
  opts.weight = &weight;
  opts.seed = 31;
  auto built = TindIndex::Build(dataset, opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const std::string original =
      ::testing::TempDir() + "/tind_perm_original.tsnap";
  const std::string permuted =
      ::testing::TempDir() + "/tind_perm_shuffled.tsnap";
  ASSERT_TRUE((*built)->SaveSnapshot(original).ok());

  // Two distinct permutations: full reversal and an inside rotation — both
  // must be as loadable as the writer's order.
  const std::vector<
      std::function<void(std::vector<snapshot::SectionEntry>*)>>
      permutations = {
          [](std::vector<snapshot::SectionEntry>* t) {
            std::reverse(t->begin(), t->end());
          },
          [](std::vector<snapshot::SectionEntry>* t) {
            ASSERT_GE(t->size(), 3u);
            std::rotate(t->begin(), t->begin() + t->size() / 2, t->end());
          },
      };

  SnapshotLoadOptions load;
  load.weight = &weight;
  auto base_loaded = TindIndex::LoadSnapshot(dataset, original, load);
  ASSERT_TRUE(base_loaded.ok()) << base_loaded.status().ToString();

  const TindParams params{3.0, 5, &weight};
  for (size_t p = 0; p < permutations.size(); ++p) {
    std::string bytes = ReadFileBytes(original);
    PermuteSectionTable(&bytes, permutations[p]);
    WriteFileBytes(permuted, bytes);

    ASSERT_TRUE(snapshot::VerifySnapshot(permuted).ok())
        << "permutation " << p;
    auto loaded = TindIndex::LoadSnapshot(dataset, permuted, load);
    ASSERT_TRUE(loaded.ok())
        << "permutation " << p << ": " << loaded.status().ToString();

    for (size_t q = 0; q < dataset.size(); ++q) {
      const AttributeHistory& query =
          dataset.attribute(static_cast<AttributeId>(q));
      QueryStats ps, bs;
      EXPECT_EQ((*loaded)->Search(query, params, &ps),
                (*base_loaded)->Search(query, params, &bs))
          << "permutation " << p << " q=" << q;
      EXPECT_EQ(ps.initial_candidates, bs.initial_candidates);
      EXPECT_EQ(ps.num_results, bs.num_results);
      EXPECT_EQ((*loaded)->ReverseSearch(query, params, nullptr),
                (*base_loaded)->ReverseSearch(query, params, nullptr))
          << "permutation " << p << " q=" << q;
    }
  }
  std::remove(original.c_str());
  std::remove(permuted.c_str());
}

/// A permuted table with a stale CRC must be rejected, not silently loaded —
/// the repair in PermuteSectionTable is what makes the test above valid.
TEST(SnapshotPermutationTest, StaleTableCrcIsRejected) {
  wiki::GeneratorOptions gen;
  gen.seed = 78;
  gen.num_days = 80;
  gen.num_families = 2;
  gen.num_noise_attributes = 8;
  gen.num_drifter_attributes = 3;
  gen.shared_vocabulary = 60;
  auto corpus = wiki::WikiGenerator(gen).GenerateDataset();
  ASSERT_TRUE(corpus.ok());
  const ConstantWeight weight(corpus->dataset.domain().num_timestamps());

  TindIndexOptions opts;
  opts.bloom_bits = 256;
  opts.num_hashes = 2;
  opts.num_slices = 3;
  opts.weight = &weight;
  auto built = TindIndex::Build(corpus->dataset, opts);
  ASSERT_TRUE(built.ok());

  const std::string path = ::testing::TempDir() + "/tind_perm_stale.tsnap";
  ASSERT_TRUE((*built)->SaveSnapshot(path).ok());
  std::string bytes = ReadFileBytes(path);
  // Swap the first two table entries WITHOUT repairing the CRCs.
  snapshot::SectionEntry a, b;
  char* table = bytes.data() + sizeof(snapshot::FileHeader);
  std::memcpy(&a, table, sizeof(a));
  std::memcpy(&b, table + sizeof(a), sizeof(b));
  std::memcpy(table, &b, sizeof(b));
  std::memcpy(table + sizeof(b), &a, sizeof(a));
  WriteFileBytes(path, bytes);

  EXPECT_FALSE(snapshot::VerifySnapshot(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tind
