#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "temporal/weights.h"
#include "tind/index.h"
#include "wiki/generator.h"

/// \file golden_regression_test.cc
/// Pins the full batch pipeline output on a fixed generator corpus to a
/// checked-in golden file. Any change to the generator, the index build,
/// the Bloom hashing, or the batch execution path that alters a single
/// result shows up as a readable diff here instead of a silent behavior
/// drift.
///
/// Regenerating the fixture (after an INTENDED behavior change):
///   TIND_REGEN_GOLDEN=1 ./build/tests/golden_regression_test
/// then inspect the diff of tests/golden/batch_golden_expected.txt and
/// commit it together with the change that explains it. The test fails
/// while regenerating so a stale TIND_REGEN_GOLDEN cannot pass CI.

namespace tind {
namespace {

/// The golden file lives in the source tree; TIND_SOURCE_DIR is injected by
/// tests/CMakeLists.txt.
std::string GoldenPath() {
  return std::string(TIND_SOURCE_DIR) +
         "/tests/golden/batch_golden_expected.txt";
}

/// Renders one "direction query: rhs,rhs,..." line per query, both
/// directions, with the funnel counters that the differential test proves
/// equal to the looped path — so this file also pins the funnel shape.
std::string RenderGolden() {
  wiki::GeneratorOptions gen;
  gen.seed = 424242;
  gen.num_days = 120;
  gen.num_families = 3;
  gen.num_noise_attributes = 14;
  gen.num_drifter_attributes = 6;
  gen.num_catchall_attributes = 2;
  gen.shared_vocabulary = 100;
  gen.entities_per_family_pool = 60;
  auto generated = wiki::WikiGenerator(gen).GenerateDataset();
  if (!generated.ok()) std::abort();
  const Dataset& dataset = generated->dataset;

  const ConstantWeight w(dataset.domain().num_timestamps());
  TindIndexOptions opts;
  opts.bloom_bits = 512;
  opts.num_hashes = 2;
  opts.num_slices = 6;
  opts.delta = 7;
  opts.epsilon = 3.0;
  opts.build_reverse_index = true;
  opts.reverse_slices = 2;
  opts.weight = &w;
  opts.seed = 99;
  auto built = TindIndex::Build(dataset, opts);
  if (!built.ok()) std::abort();
  const TindIndex& index = **built;
  const TindParams params{3.0, 7, &w};

  std::vector<const AttributeHistory*> queries;
  for (size_t q = 0; q < dataset.size(); ++q) {
    queries.push_back(&dataset.attribute(static_cast<AttributeId>(q)));
  }
  std::ostringstream out;
  out << "# Batch pipeline golden: generator seed " << gen.seed << ", "
      << dataset.size() << " attributes, eps=3 delta=7 const weight.\n";
  out << "# Regenerate: TIND_REGEN_GOLDEN=1 ./golden_regression_test\n";
  for (const bool forward : {true, false}) {
    std::vector<QueryStats> stats;
    const auto results = forward
                             ? index.BatchSearch(queries, params, &stats)
                             : index.BatchReverseSearch(queries, params, &stats);
    for (size_t q = 0; q < results.size(); ++q) {
      out << (forward ? "F" : "R") << " " << q << " funnel="
          << stats[q].initial_candidates << "/" << stats[q].after_slices << "/"
          << stats[q].after_exact_check << "/" << stats[q].num_results << ":";
      for (size_t i = 0; i < results[q].size(); ++i) {
        out << (i == 0 ? " " : ",") << results[q][i];
      }
      out << "\n";
    }
  }
  return out.str();
}

TEST(GoldenRegressionTest, BatchPipelineMatchesGoldenFile) {
  const std::string actual = RenderGolden();
  if (std::getenv("TIND_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << actual;
    out.close();
    FAIL() << "regenerated " << GoldenPath()
           << "; unset TIND_REGEN_GOLDEN and rerun to verify";
  }
  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good())
      << "missing golden file " << GoldenPath()
      << " — regenerate with TIND_REGEN_GOLDEN=1 (see file header)";
  std::ostringstream expected;
  expected << in.rdbuf();
  // Line-by-line so a drift points at the exact query.
  std::istringstream actual_lines(actual);
  std::istringstream expected_lines(expected.str());
  std::string a, e;
  size_t line = 0;
  while (true) {
    const bool has_a = static_cast<bool>(std::getline(actual_lines, a));
    const bool has_e = static_cast<bool>(std::getline(expected_lines, e));
    ++line;
    if (!has_a && !has_e) break;
    ASSERT_TRUE(has_a) << "golden has extra line " << line << ": " << e;
    ASSERT_TRUE(has_e) << "output has extra line " << line << ": " << a;
    ASSERT_EQ(a, e) << "golden mismatch at line " << line;
  }
}

}  // namespace
}  // namespace tind
