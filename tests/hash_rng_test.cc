#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/hash.h"
#include "common/memory_budget.h"
#include "common/rng.h"

namespace tind {
namespace {

TEST(HashTest, SplitMixIsDeterministic) {
  EXPECT_EQ(SplitMix64(1), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
}

TEST(HashTest, SplitMixAvalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  const int trials = 64;
  for (int bit = 0; bit < trials; ++bit) {
    const uint64_t a = SplitMix64(0x12345678ULL);
    const uint64_t b = SplitMix64(0x12345678ULL ^ (1ULL << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(total_flips) / trials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashTest, HashStringDistinguishes) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString(" "));
}

TEST(HashTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(HashTest, DoubleHashSecondStreamIsOdd) {
  for (uint64_t v = 0; v < 100; ++v) {
    EXPECT_EQ(DoubleHash::FromValue(v).h2 & 1ULL, 1ULL);
  }
}

TEST(HashTest, DoubleHashProbesStayInRange) {
  const uint64_t m = 1024;
  const DoubleHash h = DoubleHash::FromValue(777);
  for (uint32_t i = 0; i < 50; ++i) {
    EXPECT_LT(h.Probe(i, m), m);
  }
}

TEST(HashTest, DoubleHashProbesSpread) {
  const uint64_t m = 4096;
  const DoubleHash h = DoubleHash::FromValue(42);
  std::set<uint64_t> positions;
  for (uint32_t i = 0; i < 8; ++i) positions.insert(h.Probe(i, m));
  // With an odd stride mod a power of two, all 8 probes are distinct.
  EXPECT_EQ(positions.size(), 8u);
}

TEST(HashTest, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(4096));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(4097));
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(6);
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, PoissonMean) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) sum += static_cast<double>(rng.Poisson(6.5));
  EXPECT_NEAR(sum / 5000, 6.5, 0.3);
}

TEST(RngTest, GeometricMean) {
  Rng rng(6);
  // Mean failures before success = (1-p)/p = 3 for p = 0.25.
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    sum += static_cast<double>(rng.Geometric(0.25));
  }
  EXPECT_NEAR(sum / 20000, 3.0, 0.15);
  EXPECT_EQ(rng.Geometric(1.0), 0u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(100, 20);
    ASSERT_EQ(sample.size(), 20u);
    std::set<size_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), 20u);
    for (const size_t s : sample) EXPECT_LT(s, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(9);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(10);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.25, 0.02);
  EXPECT_NEAR(counts[2] / 20000.0, 0.75, 0.02);
}

TEST(ZipfSamplerTest, RankZeroMostPopular) {
  Rng rng(11);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfSamplerTest, SamplesInRange) {
  Rng rng(12);
  ZipfSampler zipf(7, 0.8);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(&rng), 7u);
}

TEST(MemoryBudgetTest, UnlimitedByDefault) {
  MemoryBudget budget;
  EXPECT_TRUE(budget.Allocate(1ULL << 40).ok());
  EXPECT_EQ(budget.used(), 1ULL << 40);
}

TEST(MemoryBudgetTest, EnforcesCap) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.Allocate(60).ok());
  EXPECT_TRUE(budget.Allocate(40).ok());
  const Status s = budget.Allocate(1);
  EXPECT_TRUE(s.IsOutOfMemory());
  EXPECT_EQ(budget.used(), 100u);
}

TEST(MemoryBudgetTest, FreeRestoresHeadroom) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.Allocate(100).ok());
  budget.Free(50);
  EXPECT_TRUE(budget.Allocate(50).ok());
  EXPECT_TRUE(budget.Allocate(1).IsOutOfMemory());
}

}  // namespace
}  // namespace tind
