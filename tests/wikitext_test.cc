#include "wiki/wikitext.h"

#include <gtest/gtest.h>

namespace tind::wiki {
namespace {

TEST(TrimTest, TrimsWhitespace) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t x \n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(ResolveLinksTest, SimpleLink) {
  EXPECT_EQ(ResolveLinks("[[Pokémon Red]]"), "Pokémon Red");
}

TEST(ResolveLinksTest, LinkWithLabelResolvesToTitle) {
  EXPECT_EQ(ResolveLinks("[[Pokémon Red|Red]]"), "Pokémon Red");
  EXPECT_EQ(ResolveLinks("[[United States|USA]]"), "United States");
}

TEST(ResolveLinksTest, TextAroundLinksPreserved) {
  EXPECT_EQ(ResolveLinks("see [[A|a]] and [[B]]!"), "see A and B!");
}

TEST(ResolveLinksTest, PlainTextUntouched) {
  EXPECT_EQ(ResolveLinks("no links here"), "no links here");
}

TEST(ResolveLinksTest, MalformedMarkupKept) {
  EXPECT_EQ(ResolveLinks("[[unclosed"), "[[unclosed");
  EXPECT_EQ(ResolveLinks("a [[x"), "a [[x");
}

TEST(ResolveLinksTest, TitleWhitespaceTrimmed) {
  EXPECT_EQ(ResolveLinks("[[ Page Title |label]]"), "Page Title");
}

TEST(ResolveLinksTest, EmptyInput) {
  EXPECT_EQ(ResolveLinks(""), "");
}

TEST(IsNullValueTest, CommonSpellings) {
  EXPECT_TRUE(IsNullValue(""));
  EXPECT_TRUE(IsNullValue("   "));
  EXPECT_TRUE(IsNullValue("-"));
  EXPECT_TRUE(IsNullValue("--"));
  EXPECT_TRUE(IsNullValue("?"));
  EXPECT_TRUE(IsNullValue("n/a"));
  EXPECT_TRUE(IsNullValue("N/A"));
  EXPECT_TRUE(IsNullValue("NA"));
  EXPECT_TRUE(IsNullValue("None"));
  EXPECT_TRUE(IsNullValue("null"));
  EXPECT_TRUE(IsNullValue("TBA"));
  EXPECT_TRUE(IsNullValue("tbd"));
  EXPECT_TRUE(IsNullValue("Unknown"));
  EXPECT_TRUE(IsNullValue("\xE2\x80\x93"));  // en dash
  EXPECT_TRUE(IsNullValue("\xE2\x80\x94"));  // em dash
}

TEST(IsNullValueTest, RealValuesNotNull) {
  EXPECT_FALSE(IsNullValue("USA"));
  EXPECT_FALSE(IsNullValue("0"));
  EXPECT_FALSE(IsNullValue("none at all"));
  EXPECT_FALSE(IsNullValue("Nandor"));
}

TEST(IsNumericValueTest, Integers) {
  EXPECT_TRUE(IsNumericValue("42"));
  EXPECT_TRUE(IsNumericValue("-7"));
  EXPECT_TRUE(IsNumericValue("+13"));
  EXPECT_TRUE(IsNumericValue(" 1996 "));
}

TEST(IsNumericValueTest, DecimalsAndSeparators) {
  EXPECT_TRUE(IsNumericValue("3.14"));
  EXPECT_TRUE(IsNumericValue("1,234,567"));
  EXPECT_TRUE(IsNumericValue("1,234.56"));
}

TEST(IsNumericValueTest, CurrencyAndPercent) {
  EXPECT_TRUE(IsNumericValue("$100"));
  EXPECT_TRUE(IsNumericValue("50%"));
  EXPECT_TRUE(IsNumericValue("\xE2\x82\xAC" "99"));  // €99
  EXPECT_TRUE(IsNumericValue("\xC2\xA3" "10"));      // £10
}

TEST(IsNumericValueTest, NonNumbers) {
  EXPECT_FALSE(IsNumericValue("abc"));
  EXPECT_FALSE(IsNumericValue("12a"));
  EXPECT_FALSE(IsNumericValue(""));
  EXPECT_FALSE(IsNumericValue("-"));
  EXPECT_FALSE(IsNumericValue("1.2.3"));
  EXPECT_FALSE(IsNumericValue(",123"));
  EXPECT_FALSE(IsNumericValue("$"));
  EXPECT_FALSE(IsNumericValue("Pokémon 2"));
}

TEST(NormalizeCellTest, FullPipeline) {
  EXPECT_EQ(NormalizeCell("  [[United States|USA]] "), "United States");
  EXPECT_EQ(NormalizeCell("plain"), "plain");
  EXPECT_EQ(NormalizeCell(" - "), "");
  EXPECT_EQ(NormalizeCell("n/a"), "");
  EXPECT_EQ(NormalizeCell("[[X|n/a-looking label]]"), "X");
}

TEST(MakeLinkTest, RoundTripsThroughResolve) {
  EXPECT_EQ(MakeLink("Page"), "[[Page]]");
  EXPECT_EQ(MakeLink("Page", "label"), "[[Page|label]]");
  EXPECT_EQ(MakeLink("Page", "Page"), "[[Page]]");  // Same label collapses.
  EXPECT_EQ(ResolveLinks(MakeLink("A B", "x")), "A B");
}

}  // namespace
}  // namespace tind::wiki
