#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "test_util.h"
#include "tind/validator.h"

namespace tind {
namespace {

/// The central correctness property: Algorithm 2 (sliding-window interval
/// sweep) must agree exactly with the per-timestamp naive oracle on random
/// history pairs, for every (ε, δ, w) combination.
class ValidatorEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int64_t, double, int>> {};

TEST_P(ValidatorEquivalenceTest, SweepMatchesNaiveOracle) {
  const auto [seed, delta, eps, weight_kind] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7919 + 13);
  const int64_t n = 60;
  const TimeDomain domain(n);
  std::unique_ptr<WeightFunction> weight;
  switch (weight_kind) {
    case 0:
      weight = std::make_unique<ConstantWeight>(n);
      break;
    case 1:
      weight = std::make_unique<ExponentialDecayWeight>(n, 0.93);
      break;
    default:
      weight = std::make_unique<LinearDecayWeight>(n);
  }
  for (int trial = 0; trial < 40; ++trial) {
    const auto q = testutil::RandomHistory(domain, &rng, 12, 0);
    const auto a = testutil::RandomHistory(domain, &rng, 12, 1);
    const TindParams params{eps, delta, weight.get()};
    const bool fast = ValidateTind(q, a, params, domain);
    const bool naive = ValidateTindNaive(q, a, params, domain);
    ASSERT_EQ(fast, naive)
        << "seed=" << seed << " trial=" << trial << " delta=" << delta
        << " eps=" << eps << " w=" << weight->ToString();
    const double v_fast = ComputeViolationWeight(q, a, delta, *weight, domain);
    const double v_naive =
        ComputeViolationWeightNaive(q, a, delta, *weight, domain);
    ASSERT_NEAR(v_fast, v_naive, 1e-7)
        << "seed=" << seed << " trial=" << trial << " delta=" << delta;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomPairs, ValidatorEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values<int64_t>(0, 1, 3, 7, 25),
                       ::testing::Values(0.0, 1.0, 4.0),
                       ::testing::Values(0, 1, 2)));

TEST(ValidatorMonotonicityTest, ViolationWeightNonIncreasingInDelta) {
  Rng rng(71);
  const TimeDomain domain(80);
  const ConstantWeight w(80);
  for (int trial = 0; trial < 60; ++trial) {
    const auto q = testutil::RandomHistory(domain, &rng, 15, 0);
    const auto a = testutil::RandomHistory(domain, &rng, 15, 1);
    double prev = ComputeViolationWeight(q, a, 0, w, domain);
    for (const int64_t delta : {1, 2, 4, 8, 16, 40}) {
      const double cur = ComputeViolationWeight(q, a, delta, w, domain);
      ASSERT_LE(cur, prev + 1e-9) << "trial " << trial << " delta " << delta;
      prev = cur;
    }
  }
}

TEST(ValidatorMonotonicityTest, ValidityMonotoneInEpsilon) {
  Rng rng(72);
  const TimeDomain domain(70);
  const ConstantWeight w(70);
  for (int trial = 0; trial < 60; ++trial) {
    const auto q = testutil::RandomHistory(domain, &rng, 10, 0);
    const auto a = testutil::RandomHistory(domain, &rng, 10, 1);
    bool prev_valid = false;
    for (const double eps : {0.0, 1.0, 2.0, 5.0, 10.0, 70.0}) {
      const TindParams p{eps, 2, &w};
      const bool valid = ValidateTind(q, a, p, domain);
      // Once valid at a smaller eps, must stay valid at larger eps.
      if (prev_valid) {
        ASSERT_TRUE(valid) << "trial " << trial << " eps " << eps;
      }
      prev_valid = valid;
    }
    // At eps = total weight, everything is valid.
    const TindParams all{w.Total(), 0, &w};
    ASSERT_TRUE(ValidateTind(q, a, all, domain));
  }
}

TEST(ValidatorReflexivityTest, EveryHistoryIncludesItself) {
  // Reflexivity holds for all relaxed tIND variants (Section 3.4).
  Rng rng(73);
  const TimeDomain domain(50);
  const ConstantWeight w(50);
  for (int trial = 0; trial < 50; ++trial) {
    const auto q = testutil::RandomHistory(domain, &rng, 20, 0);
    for (const int64_t delta : {0, 3}) {
      const TindParams p{0.0, delta, &w};
      ASSERT_TRUE(ValidateTind(q, q, p, domain)) << "trial " << trial;
    }
  }
}

TEST(ValidatorSubsetTest, TrueSubsetHistoriesAlwaysValid) {
  // If at every timestamp Q[t] ⊆ A[t] by construction, the strict tIND must
  // hold for any delta and any weight.
  Rng rng(74);
  const TimeDomain domain(60);
  const ConstantWeight w(60);
  for (int trial = 0; trial < 40; ++trial) {
    const auto a = testutil::RandomHistory(domain, &rng, 15, 1, 10, 8);
    // Derive Q from A's own versions, dropping random values, with changes
    // exactly at A's change points.
    AttributeHistoryBuilder qb(0, {}, domain);
    for (size_t v = 0; v < a.num_versions(); ++v) {
      std::vector<ValueId> kept;
      for (const ValueId val : a.versions()[v].values()) {
        if (rng.Bernoulli(0.6)) kept.push_back(val);
      }
      (void)qb.AddVersion(a.change_timestamps()[v],
                          ValueSet::FromUnsorted(std::move(kept)));
    }
    if (qb.num_versions() == 0) continue;
    auto q = qb.Finish();
    ASSERT_TRUE(q.ok());
    // Q is born when A is born and is a per-timestamp subset afterwards —
    // except Q may be born *later* than A if leading versions were empty;
    // both cases keep Q[t] ⊆ A[t] for all t.
    const TindParams p{0.0, 0, &w};
    ASSERT_TRUE(ValidateTind(*q, a, p, domain)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace tind
