/// Snapshot round-trip, manifest, and corruption tests (src/snapshot/).
///
/// The corruption battery is the load-bearing half: a snapshot is trusted
/// storage feeding zero-copy kernel views, so every malformed input — short
/// files, truncation at each section boundary, flipped payload bytes,
/// cross-endian or future-version headers — must surface as a *typed* error
/// (NotFound / IOError / InvalidArgument / FailedPrecondition), never a
/// crash or a silently wrong index.

#include "snapshot/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "snapshot/snapshot_format.h"
#include "temporal/weights.h"
#include "tind/index.h"
#include "wiki/generator.h"

namespace tind {
namespace {

wiki::GeneratedDataset MakeCorpus(uint64_t seed) {
  wiki::GeneratorOptions gen;
  gen.seed = seed;
  gen.num_days = 120;
  gen.num_families = 3;
  gen.num_noise_attributes = 14;
  gen.num_drifter_attributes = 6;
  gen.shared_vocabulary = 100;
  gen.entities_per_family_pool = 60;
  auto generated = wiki::WikiGenerator(gen).GenerateDataset();
  if (!generated.ok()) std::abort();
  return std::move(*generated);
}

TindIndexOptions SmallOptions(const WeightFunction* weight) {
  TindIndexOptions opts;
  opts.bloom_bits = 256;
  opts.num_hashes = 2;
  opts.num_slices = 4;
  opts.delta = 5;
  opts.epsilon = 3.0;
  opts.build_reverse_index = true;
  opts.reverse_slices = 2;
  opts.weight = weight;
  return opts;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = MakeCorpus(17);
    weight_ = std::make_unique<ConstantWeight>(
        corpus_.dataset.domain().num_timestamps());
    auto built = TindIndex::Build(corpus_.dataset, SmallOptions(weight_.get()));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    index_ = std::move(*built);
    path_ = ::testing::TempDir() + "/tind_snapshot_test.tsnap";
    std::remove(path_.c_str());
  }

  void TearDown() override {
    std::remove(path_.c_str());
    FaultInjector::Global().Reset();
  }

  SnapshotLoadOptions LoadOptions() const {
    SnapshotLoadOptions o;
    o.weight = weight_.get();
    return o;
  }

  wiki::GeneratedDataset corpus_;
  std::unique_ptr<ConstantWeight> weight_;
  std::unique_ptr<TindIndex> index_;
  std::string path_;
};

TEST_F(SnapshotTest, RoundTripMatchesBuiltIndex) {
  ASSERT_TRUE(index_->SaveSnapshot(path_).ok());
  auto loaded = TindIndex::LoadSnapshot(corpus_.dataset, path_, LoadOptions());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE((*loaded)->loaded_from_snapshot());
  EXPECT_FALSE(index_->loaded_from_snapshot());
  EXPECT_EQ((*loaded)->MemoryUsageBytes(), index_->MemoryUsageBytes());
  EXPECT_EQ((*loaded)->slice_intervals(), index_->slice_intervals());

  const TindParams params{3.0, 5, weight_.get()};
  for (size_t q = 0; q < corpus_.dataset.size(); ++q) {
    const AttributeHistory& query =
        corpus_.dataset.attribute(static_cast<AttributeId>(q));
    EXPECT_EQ(index_->Search(query, params), (*loaded)->Search(query, params))
        << "forward query " << q;
    EXPECT_EQ(index_->ReverseSearch(query, params),
              (*loaded)->ReverseSearch(query, params))
        << "reverse query " << q;
  }
}

TEST_F(SnapshotTest, SaveWithoutReverseIndexRoundTrips) {
  TindIndexOptions opts = SmallOptions(weight_.get());
  opts.build_reverse_index = false;
  auto built = TindIndex::Build(corpus_.dataset, opts);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->SaveSnapshot(path_).ok());

  auto info = snapshot::ReadSnapshotInfo(path_);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->has_reverse);

  auto loaded = TindIndex::LoadSnapshot(corpus_.dataset, path_, LoadOptions());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TindParams params{3.0, 5, weight_.get()};
  const AttributeHistory& query = corpus_.dataset.attribute(0);
  EXPECT_EQ((*built)->Search(query, params), (*loaded)->Search(query, params));
}

TEST_F(SnapshotTest, InfoReportsManifest) {
  ASSERT_TRUE(index_->SaveSnapshot(path_).ok());
  auto info = snapshot::ReadSnapshotInfo(path_);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->format_version, snapshot::kFormatVersion);
  EXPECT_TRUE(info->has_reverse);
  EXPECT_EQ(info->num_attributes, corpus_.dataset.size());
  EXPECT_EQ(info->num_timestamps, corpus_.dataset.domain().num_timestamps());
  EXPECT_EQ(info->dictionary_size, corpus_.dataset.dictionary().size());
  EXPECT_EQ(info->options.bloom_bits, 256u);
  EXPECT_EQ(info->options.num_hashes, 2u);
  EXPECT_EQ(info->options.num_slices, 4u);
  EXPECT_EQ(info->options.delta, 5);
  EXPECT_DOUBLE_EQ(info->options.epsilon, 3.0);
  EXPECT_EQ(info->weight_description, weight_->ToString());
  EXPECT_FALSE(info->producer.empty());
  EXPECT_EQ(info->corpus_digest,
            snapshot::ComputeCorpusDigest(corpus_.dataset));
  // Manifest, dictionary, meta, intervals, caches, M_T, 4 slices, M_R.
  EXPECT_EQ(info->sections.size(), 6u + 1u + 4u + 1u);
  EXPECT_TRUE(snapshot::VerifySnapshot(path_).ok());
}

TEST_F(SnapshotTest, MissingFileIsNotFound) {
  auto loaded = TindIndex::LoadSnapshot(corpus_.dataset,
                                        path_ + ".does_not_exist",
                                        LoadOptions());
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound()) << loaded.status().ToString();
}

TEST_F(SnapshotTest, NullWeightIsInvalidArgument) {
  ASSERT_TRUE(index_->SaveSnapshot(path_).ok());
  SnapshotLoadOptions options;
  auto loaded = TindIndex::LoadSnapshot(corpus_.dataset, path_, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST_F(SnapshotTest, WrongWeightIsFailedPrecondition) {
  ASSERT_TRUE(index_->SaveSnapshot(path_).ok());
  const ExponentialDecayWeight other(
      corpus_.dataset.domain().num_timestamps(), 0.98);
  SnapshotLoadOptions options;
  options.weight = &other;
  auto loaded = TindIndex::LoadSnapshot(corpus_.dataset, path_, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsFailedPrecondition())
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, WrongCorpusIsFailedPrecondition) {
  ASSERT_TRUE(index_->SaveSnapshot(path_).ok());
  // Same generator shape, different seed: same domain length, different
  // content — only the digest can tell them apart.
  wiki::GeneratedDataset other = MakeCorpus(18);
  SnapshotLoadOptions options = LoadOptions();
  auto loaded = TindIndex::LoadSnapshot(other.dataset, path_, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsFailedPrecondition())
      << loaded.status().ToString();

  // With digest verification off, the cheap shape checks still gate: a
  // different-sized corpus is rejected...
  options.verify_corpus_digest = false;
  wiki::GeneratorOptions small;
  small.seed = 5;
  small.num_days = 120;
  small.num_families = 1;
  small.num_noise_attributes = 3;
  small.num_drifter_attributes = 0;
  auto tiny = wiki::WikiGenerator(small).GenerateDataset();
  ASSERT_TRUE(tiny.ok());
  auto shape_mismatch =
      TindIndex::LoadSnapshot(tiny->dataset, path_, options);
  ASSERT_FALSE(shape_mismatch.ok());
  EXPECT_TRUE(shape_mismatch.status().IsFailedPrecondition());
}

TEST_F(SnapshotTest, InjectedWriteFaultLeavesExistingSnapshotIntact) {
  ASSERT_TRUE(index_->SaveSnapshot(path_).ok());
  const std::string before = ReadFileBytes(path_);

  ASSERT_TRUE(FaultInjector::Global().Configure("snapshot/write=1", 7).ok());
  const Status faulted = index_->SaveSnapshot(path_);
  FaultInjector::Global().Reset();
  ASSERT_FALSE(faulted.ok());
  EXPECT_TRUE(faulted.IsIOError()) << faulted.ToString();

  EXPECT_EQ(ReadFileBytes(path_), before);
  EXPECT_TRUE(snapshot::VerifySnapshot(path_).ok());
}

/// Every prefix that ends exactly at a section boundary (plus the header and
/// table boundaries) must be rejected with a typed error.
TEST_F(SnapshotTest, TruncationAtEverySectionBoundaryIsTyped) {
  ASSERT_TRUE(index_->SaveSnapshot(path_).ok());
  const std::string bytes = ReadFileBytes(path_);
  auto info = snapshot::ReadSnapshotInfo(path_);
  ASSERT_TRUE(info.ok());

  std::vector<size_t> cuts = {0, 10, sizeof(snapshot::FileHeader)};
  for (const snapshot::SectionInfo& s : info->sections) {
    cuts.push_back(s.offset);
    cuts.push_back(s.offset + s.size / 2);
    cuts.push_back(s.offset + s.size);
  }
  const std::string truncated_path = path_ + ".trunc";
  for (const size_t cut : cuts) {
    if (cut >= bytes.size()) continue;
    WriteFileBytes(truncated_path, bytes.substr(0, cut));
    auto loaded =
        TindIndex::LoadSnapshot(corpus_.dataset, truncated_path, LoadOptions());
    ASSERT_FALSE(loaded.ok()) << "cut at " << cut << " was accepted";
    EXPECT_TRUE(loaded.status().IsIOError() ||
                loaded.status().IsInvalidArgument())
        << "cut at " << cut << ": " << loaded.status().ToString();
    EXPECT_FALSE(snapshot::VerifySnapshot(truncated_path).ok())
        << "cut at " << cut;
  }
  std::remove(truncated_path.c_str());
}

/// One flipped byte in the middle of every section must fail the CRC pass.
TEST_F(SnapshotTest, FlippedByteInEverySectionFailsChecksum) {
  ASSERT_TRUE(index_->SaveSnapshot(path_).ok());
  const std::string bytes = ReadFileBytes(path_);
  auto info = snapshot::ReadSnapshotInfo(path_);
  ASSERT_TRUE(info.ok());

  const std::string corrupt_path = path_ + ".flip";
  for (const snapshot::SectionInfo& s : info->sections) {
    ASSERT_GT(s.size, 0u);
    std::string corrupt = bytes;
    corrupt[s.offset + s.size / 2] ^= 0x40;
    WriteFileBytes(corrupt_path, corrupt);
    auto loaded =
        TindIndex::LoadSnapshot(corpus_.dataset, corrupt_path, LoadOptions());
    ASSERT_FALSE(loaded.ok()) << "flip in " << s.name << " was accepted";
    EXPECT_TRUE(loaded.status().IsIOError() ||
                loaded.status().IsInvalidArgument())
        << s.name << ": " << loaded.status().ToString();
    EXPECT_FALSE(snapshot::VerifySnapshot(corrupt_path).ok()) << s.name;
  }
  std::remove(corrupt_path.c_str());
}

/// Patches one FileHeader field, fixes up the header CRC so only that field
/// is wrong, and expects the given rejection.
void ExpectHeaderFieldRejected(const std::string& base_bytes,
                               const std::string& path, size_t field_offset,
                               uint32_t new_value, bool want_precondition,
                               const Dataset& dataset,
                               const SnapshotLoadOptions& options) {
  std::string corrupt = base_bytes;
  std::memcpy(corrupt.data() + field_offset, &new_value, sizeof(new_value));
  snapshot::FileHeader header;
  std::memcpy(&header, corrupt.data(), sizeof(header));
  header.header_crc = snapshot::HeaderCrc(header);
  std::memcpy(corrupt.data(), &header, sizeof(header));
  WriteFileBytes(path, corrupt);

  auto loaded = TindIndex::LoadSnapshot(dataset, path, options);
  ASSERT_FALSE(loaded.ok());
  if (want_precondition) {
    EXPECT_TRUE(loaded.status().IsFailedPrecondition())
        << loaded.status().ToString();
  } else {
    EXPECT_TRUE(loaded.status().IsIOError()) << loaded.status().ToString();
  }
}

TEST_F(SnapshotTest, IncompatibleHeadersAreFailedPrecondition) {
  ASSERT_TRUE(index_->SaveSnapshot(path_).ok());
  const std::string bytes = ReadFileBytes(path_);
  const std::string patched = path_ + ".patched";

  // Offsets within FileHeader: magic 0, version 8, endian 12, word_bits 16.
  ExpectHeaderFieldRejected(bytes, patched, 8, snapshot::kFormatVersion + 1,
                            /*want_precondition=*/true, corpus_.dataset,
                            LoadOptions());
  ExpectHeaderFieldRejected(bytes, patched, 12, 0x04030201,
                            /*want_precondition=*/true, corpus_.dataset,
                            LoadOptions());
  ExpectHeaderFieldRejected(bytes, patched, 16, 32,
                            /*want_precondition=*/true, corpus_.dataset,
                            LoadOptions());

  // A wrong magic (not a snapshot at all) is an IOError, as is a header
  // whose CRC does not match its bytes.
  std::string bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  WriteFileBytes(patched, bad_magic);
  auto loaded = TindIndex::LoadSnapshot(corpus_.dataset, patched, LoadOptions());
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());

  std::string bad_crc = bytes;
  bad_crc[9] ^= 0x01;  // Version byte, CRC left stale.
  WriteFileBytes(patched, bad_crc);
  loaded = TindIndex::LoadSnapshot(corpus_.dataset, patched, LoadOptions());
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());

  std::remove(patched.c_str());
}

TEST_F(SnapshotTest, ChecksumVerificationCanBeSkipped) {
  ASSERT_TRUE(index_->SaveSnapshot(path_).ok());
  SnapshotLoadOptions options = LoadOptions();
  options.verify_checksums = false;
  auto loaded = TindIndex::LoadSnapshot(corpus_.dataset, path_, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TindParams params{3.0, 5, weight_.get()};
  const AttributeHistory& query = corpus_.dataset.attribute(0);
  EXPECT_EQ(index_->Search(query, params), (*loaded)->Search(query, params));
}

TEST_F(SnapshotTest, MemoryBudgetIsEnforcedOnLoad) {
  ASSERT_TRUE(index_->SaveSnapshot(path_).ok());
  MemoryBudget tight(index_->MemoryUsageBytes() / 2);
  SnapshotLoadOptions options = LoadOptions();
  options.memory = &tight;
  auto loaded = TindIndex::LoadSnapshot(corpus_.dataset, path_, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsOutOfMemory()) << loaded.status().ToString();

  MemoryBudget roomy(4 * index_->MemoryUsageBytes());
  options.memory = &roomy;
  auto ok = TindIndex::LoadSnapshot(corpus_.dataset, path_, options);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(roomy.used(), (*ok)->MemoryUsageBytes());
}

}  // namespace
}  // namespace tind
