#include "tind/validator.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace tind {
namespace {

using testutil::MakeHistory;

class ValidatorTest : public ::testing::Test {
 protected:
  TindParams Params(double eps, int64_t delta, const WeightFunction* w) {
    return TindParams{eps, delta, w};
  }
};

TEST_F(ValidatorTest, PaperFigure2StrictTind) {
  // Figure 2 (A): Q always contained in A -> strict tIND holds.
  const TimeDomain domain(3);
  const ConstantWeight w(3);
  // Values: GER=0, ITA=1, POL=2, HUN=3.
  const auto q = MakeHistory(domain, {{0, ValueSet{0}}, {2, ValueSet{0, 2}}});
  const auto a = MakeHistory(
      domain, {{0, ValueSet{0, 1}}, {2, ValueSet{0, 2, 3}}});
  EXPECT_TRUE(ValidateTind(q, a, Params(0, 0, &w), domain));
  EXPECT_TRUE(ValidateTindNaive(q, a, Params(0, 0, &w), domain));
}

TEST_F(ValidatorTest, PaperFigure2EpsilonRelaxed) {
  // Figure 2 (B): violation at exactly one of three timestamps; valid for
  // eps >= 1 (constant weight 1), invalid for eps = 0.
  const TimeDomain domain(3);
  const ConstantWeight w(3);
  const auto q = MakeHistory(
      domain, {{0, ValueSet{0}}, {1, ValueSet{0, 2}}, {2, ValueSet{0}}});
  const auto a = MakeHistory(domain, {{0, ValueSet{0, 1}}});
  EXPECT_FALSE(ValidateTind(q, a, Params(0, 0, &w), domain));
  EXPECT_TRUE(ValidateTind(q, a, Params(1, 0, &w), domain));
  EXPECT_DOUBLE_EQ(ComputeViolationWeight(q, a, 0, w, domain), 1.0);
}

TEST_F(ValidatorTest, PaperFigure2DeltaContainment) {
  // Figure 2 (C): Q[2] needs POL which A held only at timestamp 1; delta=1
  // rescues it.
  const TimeDomain domain(3);
  const ConstantWeight w(3);
  const auto q = MakeHistory(domain, {{0, ValueSet{0}}, {2, ValueSet{0, 2}}});
  const auto a = MakeHistory(
      domain, {{0, ValueSet{0}}, {1, ValueSet{0, 2}}, {2, ValueSet{0, 3}}});
  EXPECT_FALSE(ValidateTind(q, a, Params(0, 0, &w), domain));
  EXPECT_TRUE(ValidateTind(q, a, Params(0, 1, &w), domain));
  EXPECT_TRUE(ValidateTindNaive(q, a, Params(0, 1, &w), domain));
}

TEST_F(ValidatorTest, EmptyQueryAlwaysContained) {
  const TimeDomain domain(50);
  const ConstantWeight w(50);
  // Q exists only from day 40 on; before that it is unobservable (empty).
  const auto q = MakeHistory(domain, {{40, ValueSet{1}}});
  const auto a = MakeHistory(domain, {{0, ValueSet{1, 2}}});
  EXPECT_TRUE(ValidateTind(q, a, Params(0, 0, &w), domain));
}

TEST_F(ValidatorTest, QueryBornBeforeRhs) {
  const TimeDomain domain(50);
  const ConstantWeight w(50);
  const auto q = MakeHistory(domain, {{0, ValueSet{1}}});
  const auto a = MakeHistory(domain, {{10, ValueSet{1, 2}}});
  // Violated days 0..9 (A unobservable), contained afterwards.
  EXPECT_DOUBLE_EQ(ComputeViolationWeight(q, a, 0, w, domain), 10.0);
  EXPECT_FALSE(ValidateTind(q, a, Params(9, 0, &w), domain));
  EXPECT_TRUE(ValidateTind(q, a, Params(10, 0, &w), domain));
  // Delta reaches forward into A's existence: with delta=3 days 7..9 are
  // delta-contained, leaving 7 violated days.
  EXPECT_DOUBLE_EQ(ComputeViolationWeight(q, a, 3, w, domain), 7.0);
}

TEST_F(ValidatorTest, ViolationAtBoundaryEpsilonEquality) {
  const TimeDomain domain(10);
  const ConstantWeight w(10);
  // Q holds value 9 on days 4..6 (3 days); A never has it.
  const auto q = MakeHistory(
      domain, {{0, ValueSet{1}}, {4, ValueSet{1, 9}}, {7, ValueSet{1}}});
  const auto a = MakeHistory(domain, {{0, ValueSet{1, 2}}});
  EXPECT_DOUBLE_EQ(ComputeViolationWeight(q, a, 0, w, domain), 3.0);
  // Validity allows violation == eps exactly.
  EXPECT_TRUE(ValidateTind(q, a, Params(3.0, 0, &w), domain));
  EXPECT_FALSE(ValidateTind(q, a, Params(2.99, 0, &w), domain));
}

TEST_F(ValidatorTest, DeltaWindowClampedAtDomainEdges) {
  const TimeDomain domain(5);
  const ConstantWeight w(5);
  const auto q = MakeHistory(domain, {{0, ValueSet{7}}});
  const auto a = MakeHistory(domain, {{4, ValueSet{7}}});
  // Value 7 appears in A only at day 4; with delta=4 every day of Q sees it.
  EXPECT_TRUE(ValidateTind(q, a, Params(0, 4, &w), domain));
  EXPECT_FALSE(ValidateTind(q, a, Params(0, 3, &w), domain));
}

TEST_F(ValidatorTest, RemovalLagRescuedByDelta) {
  // Parent removes a value at day 20, child keeps it until day 23.
  const TimeDomain domain(40);
  const ConstantWeight w(40);
  const auto child = MakeHistory(
      domain, {{0, ValueSet{1, 2}}, {23, ValueSet{1}}});
  const auto parent = MakeHistory(
      domain, {{0, ValueSet{1, 2, 3}}, {20, ValueSet{1, 3}}});
  EXPECT_DOUBLE_EQ(ComputeViolationWeight(child, parent, 0, w, domain), 3.0);
  // delta=3: for t in [20,22], parent had value 2 at t-delta <= 19.
  EXPECT_TRUE(ValidateTind(child, parent, Params(0, 3, &w), domain));
  EXPECT_FALSE(ValidateTind(child, parent, Params(0, 2, &w), domain));
}

TEST_F(ValidatorTest, IsDeltaContainedSpotChecks) {
  const TimeDomain domain(10);
  const auto q = MakeHistory(domain, {{0, ValueSet{5}}});
  const auto a = MakeHistory(domain, {{3, ValueSet{5}}, {5, ValueSet{6}}});
  EXPECT_FALSE(IsDeltaContained(q, a, 0, 2, domain));
  EXPECT_TRUE(IsDeltaContained(q, a, 1, 2, domain));
  EXPECT_TRUE(IsDeltaContained(q, a, 4, 0, domain));
  EXPECT_TRUE(IsDeltaContained(q, a, 5, 1, domain));   // A[[4,6]] = {5,6}.
  EXPECT_FALSE(IsDeltaContained(q, a, 7, 1, domain));  // A[[6,8]] = {6}.
}

TEST_F(ValidatorTest, IsDeltaContainedUsesWindowUnion) {
  const TimeDomain domain(10);
  const auto q = MakeHistory(domain, {{0, ValueSet{5, 6}}});
  const auto a = MakeHistory(domain, {{0, ValueSet{5}}, {4, ValueSet{6}}});
  // At t=3 with delta=1 the window [2,4] holds {5} ∪ {6}.
  EXPECT_TRUE(IsDeltaContained(q, a, 3, 1, domain));
  // At t=1 with delta=1 the window [0,2] holds only {5}.
  EXPECT_FALSE(IsDeltaContained(q, a, 1, 1, domain));
}

TEST_F(ValidatorTest, WeightedViolationUsesWeightFunction) {
  const int64_t n = 100;
  const TimeDomain domain(n);
  const ExponentialDecayWeight w(n, 0.9);
  // Q violated on days 0..9 only (A born day 10).
  const auto q = MakeHistory(domain, {{0, ValueSet{1}}});
  const auto a = MakeHistory(domain, {{10, ValueSet{1}}});
  const double expected = w.Sum(Interval{0, 9});
  EXPECT_NEAR(ComputeViolationWeight(q, a, 0, w, domain), expected, 1e-9);
  TindParams params{expected + 1e-6, 0, &w};
  EXPECT_TRUE(ValidateTind(q, a, params, domain));
  TindParams tight{expected * 0.5, 0, &w};
  EXPECT_FALSE(ValidateTind(q, a, tight, domain));
}

TEST_F(ValidatorTest, SelfInclusionAlwaysValid) {
  const TimeDomain domain(30);
  const ConstantWeight w(30);
  const auto q = MakeHistory(
      domain, {{0, ValueSet{1, 2}}, {10, ValueSet{3}}, {20, ValueSet{1, 9}}});
  EXPECT_TRUE(ValidateTind(q, q, Params(0, 0, &w), domain));
}

TEST_F(ValidatorTest, StrictTindDemandsAllTimestamps) {
  const TimeDomain domain(100);
  const ConstantWeight w(100);
  // Single-day violation at day 99 (the last day).
  const auto q = MakeHistory(domain, {{0, ValueSet{1}}, {99, ValueSet{1, 2}}});
  const auto a = MakeHistory(domain, {{0, ValueSet{1}}});
  EXPECT_FALSE(ValidateTind(q, a, Params(0, 0, &w), domain));
  EXPECT_TRUE(ValidateTind(q, a, Params(1, 0, &w), domain));
}

TEST_F(ValidatorTest, NaiveAgreesOnPaperExamples) {
  const TimeDomain domain(3);
  const ConstantWeight w(3);
  const auto q = MakeHistory(
      domain, {{0, ValueSet{0}}, {1, ValueSet{0, 2}}, {2, ValueSet{0}}});
  const auto a = MakeHistory(domain, {{0, ValueSet{0, 1}}});
  for (const double eps : {0.0, 0.5, 1.0, 2.0}) {
    for (const int64_t delta : {0, 1, 2}) {
      const TindParams p{eps, delta, &w};
      EXPECT_EQ(ValidateTind(q, a, p, domain),
                ValidateTindNaive(q, a, p, domain))
          << "eps=" << eps << " delta=" << delta;
    }
  }
}

TEST_F(ValidatorTest, RelaxedTindsAreNotTransitive) {
  // Section 3.4: ε-relaxed tINDs are not transitive because violations need
  // not be temporally aligned. Q ⊆_{1/3} A (violated at t2 only) and
  // A ⊆_{1/3} B (violated at t0 only), yet Q ⊆ B is violated at both.
  const TimeDomain domain(3);
  const auto rel = MakeRelativeWeight(3);
  // Values: q=0, z=1, y=2.
  const auto q = MakeHistory(domain, {{0, ValueSet{0}}});
  const auto a = MakeHistory(domain, {{0, ValueSet{0}}, {2, ValueSet{1}}});
  const auto b = MakeHistory(
      domain, {{0, ValueSet{2}}, {1, ValueSet{0, 1}}, {2, ValueSet{1}}});
  const TindParams p{1.0 / 3, 0, rel.get()};
  EXPECT_TRUE(ValidateTind(q, a, p, domain));
  EXPECT_TRUE(ValidateTind(a, b, p, domain));
  EXPECT_FALSE(ValidateTind(q, b, p, domain));
}

TEST_F(ValidatorTest, ViolationWeightZeroForValidStrict) {
  const TimeDomain domain(20);
  const ConstantWeight w(20);
  const auto q = MakeHistory(domain, {{0, ValueSet{1}}});
  const auto a = MakeHistory(domain, {{0, ValueSet{1, 2}}});
  EXPECT_DOUBLE_EQ(ComputeViolationWeight(q, a, 0, w, domain), 0.0);
}

}  // namespace
}  // namespace tind
