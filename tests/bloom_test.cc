#include <gtest/gtest.h>

#include "bloom/bloom_filter.h"
#include "bloom/bloom_matrix.h"
#include "common/rng.h"

namespace tind {
namespace {

TEST(BloomFilterTest, EmptyFilterContainsNothing) {
  const BloomFilter bf(512, 3);
  EXPECT_EQ(bf.CountSetBits(), 0u);
  EXPECT_FALSE(bf.MightContain(7));
  EXPECT_DOUBLE_EQ(bf.Density(), 0.0);
}

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bf(1024, 3);
  for (ValueId v = 0; v < 100; ++v) bf.Add(v * 13 + 1);
  for (ValueId v = 0; v < 100; ++v) EXPECT_TRUE(bf.MightContain(v * 13 + 1));
}

TEST(BloomFilterTest, LowFalsePositiveRateWhenSparse) {
  BloomFilter bf(4096, 3);
  for (ValueId v = 0; v < 28; ++v) bf.Add(v);  // Paper's avg cardinality.
  int fp = 0;
  for (ValueId v = 1000; v < 11000; ++v) fp += bf.MightContain(v) ? 1 : 0;
  EXPECT_LT(fp, 50);  // << 0.5% at this density.
}

TEST(BloomFilterTest, FromValueSet) {
  const ValueSet vs{1, 2, 3};
  const BloomFilter bf = BloomFilter::FromValueSet(vs, 512, 2);
  EXPECT_TRUE(bf.MightContain(1));
  EXPECT_TRUE(bf.MightContain(2));
  EXPECT_TRUE(bf.MightContain(3));
  EXPECT_LE(bf.CountSetBits(), 6u);
}

TEST(BloomFilterTest, SubsetRelationPreserved) {
  // The core MANY property: A ⊆ B implies h(A) bits ⊆ h(B) bits.
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ValueId> big;
    for (int i = 0; i < 40; ++i) big.push_back(static_cast<ValueId>(rng.Uniform(100000)));
    std::vector<ValueId> small;
    for (const ValueId v : big) {
      if (rng.Bernoulli(0.4)) small.push_back(v);
    }
    const BloomFilter bf_big =
        BloomFilter::FromValueSet(ValueSet::FromUnsorted(big), 1024, 3);
    const BloomFilter bf_small =
        BloomFilter::FromValueSet(ValueSet::FromUnsorted(small), 1024, 3);
    EXPECT_TRUE(bf_small.IsSubsetOf(bf_big));
  }
}

TEST(BloomFilterTest, NonSubsetUsuallyDetected) {
  // Disjoint sets in a large filter should practically never appear
  // contained.
  const BloomFilter a =
      BloomFilter::FromValueSet(ValueSet{1, 2, 3, 4, 5}, 4096, 3);
  const BloomFilter b =
      BloomFilter::FromValueSet(ValueSet{100, 200, 300}, 4096, 3);
  EXPECT_FALSE(b.IsSubsetOf(a));
}

TEST(BloomFilterTest, DensityGrowsWithValues) {
  BloomFilter bf(512, 3);
  const double d0 = bf.Density();
  for (ValueId v = 0; v < 50; ++v) bf.Add(v);
  EXPECT_GT(bf.Density(), d0);
  EXPECT_LE(bf.Density(), 1.0);
}

TEST(BloomFilterTest, MemoryUsage) {
  const BloomFilter bf(4096, 3);
  EXPECT_EQ(bf.MemoryUsageBytes(), 4096u / 8);
}

class BloomMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    matrix_ = BloomMatrix(512, 3, 5);
    // Column value sets: 0:{1,2}, 1:{1,2,3}, 2:{2}, 3:{10,11}, 4:{}.
    matrix_.SetColumn(0, ValueSet{1, 2});
    matrix_.SetColumn(1, ValueSet{1, 2, 3});
    matrix_.SetColumn(2, ValueSet{2});
    matrix_.SetColumn(3, ValueSet{10, 11});
  }
  BloomMatrix matrix_;
};

TEST_F(BloomMatrixTest, Geometry) {
  EXPECT_EQ(matrix_.num_bits(), 512u);
  EXPECT_EQ(matrix_.num_hashes(), 3u);
  EXPECT_EQ(matrix_.num_columns(), 5u);
  EXPECT_EQ(matrix_.MemoryUsageBytes(), 512u * 8);  // 512 rows x 5->64 bits.
}

TEST_F(BloomMatrixTest, SupersetQueryFindsContainingColumns) {
  const BloomFilter q = matrix_.MakeQueryFilter(ValueSet{1, 2});
  BitVector candidates(5, true);
  matrix_.QuerySupersets(q, &candidates);
  EXPECT_TRUE(candidates.Get(0));
  EXPECT_TRUE(candidates.Get(1));
  EXPECT_FALSE(candidates.Get(2));
  EXPECT_FALSE(candidates.Get(3));
  EXPECT_FALSE(candidates.Get(4));
}

TEST_F(BloomMatrixTest, SupersetQueryRespectsIncomingCandidates) {
  const BloomFilter q = matrix_.MakeQueryFilter(ValueSet{1, 2});
  BitVector candidates(5);
  candidates.Set(1);  // Only column 1 allowed in.
  matrix_.QuerySupersets(q, &candidates);
  EXPECT_FALSE(candidates.Get(0));
  EXPECT_TRUE(candidates.Get(1));
}

TEST_F(BloomMatrixTest, EmptyQueryKeepsAllCandidates) {
  const BloomFilter q = matrix_.MakeQueryFilter(ValueSet());
  BitVector candidates(5, true);
  matrix_.QuerySupersets(q, &candidates);
  EXPECT_EQ(candidates.Count(), 5u);
}

TEST_F(BloomMatrixTest, SubsetQueryFindsContainedColumns) {
  // Which columns are subsets of {1,2,3}? 0, 1, 2 and the empty 4.
  const BloomFilter q = matrix_.MakeQueryFilter(ValueSet{1, 2, 3});
  BitVector candidates(5, true);
  matrix_.QuerySubsets(q, &candidates);
  EXPECT_TRUE(candidates.Get(0));
  EXPECT_TRUE(candidates.Get(1));
  EXPECT_TRUE(candidates.Get(2));
  EXPECT_FALSE(candidates.Get(3));
  EXPECT_TRUE(candidates.Get(4));
}

TEST_F(BloomMatrixTest, ColumnContains) {
  const BloomFilter q = matrix_.MakeQueryFilter(ValueSet{1, 2});
  EXPECT_TRUE(matrix_.ColumnContains(q, 0));
  EXPECT_TRUE(matrix_.ColumnContains(q, 1));
  EXPECT_FALSE(matrix_.ColumnContains(q, 3));
}

/// Randomized agreement with exact set logic: Bloom answers must be a
/// superset of the true answers (no false negatives) in both directions.
TEST(BloomMatrixPropertyTest, NeverDropsTrueAnswers) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n_cols = 30;
    std::vector<ValueSet> sets;
    BloomMatrix matrix(1024, 3, n_cols);
    for (size_t c = 0; c < n_cols; ++c) {
      std::vector<ValueId> vals;
      const size_t card = 1 + rng.Uniform(20);
      for (size_t i = 0; i < card; ++i) {
        vals.push_back(static_cast<ValueId>(rng.Uniform(60)));
      }
      sets.push_back(ValueSet::FromUnsorted(std::move(vals)));
      matrix.SetColumn(c, sets.back());
    }
    std::vector<ValueId> qvals;
    for (size_t i = 0; i < 5; ++i) {
      qvals.push_back(static_cast<ValueId>(rng.Uniform(60)));
    }
    const ValueSet query = ValueSet::FromUnsorted(std::move(qvals));
    const BloomFilter qf = matrix.MakeQueryFilter(query);

    BitVector supersets(n_cols, true);
    matrix.QuerySupersets(qf, &supersets);
    BitVector subsets(n_cols, true);
    matrix.QuerySubsets(qf, &subsets);
    for (size_t c = 0; c < n_cols; ++c) {
      if (query.IsSubsetOf(sets[c])) {
        EXPECT_TRUE(supersets.Get(c)) << "trial " << trial << " col " << c;
      }
      if (sets[c].IsSubsetOf(query)) {
        EXPECT_TRUE(subsets.Get(c)) << "trial " << trial << " col " << c;
      }
    }
  }
}

}  // namespace
}  // namespace tind
