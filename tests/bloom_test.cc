#include <gtest/gtest.h>

#include <vector>

#include "bloom/bloom_batch.h"
#include "bloom/bloom_filter.h"
#include "bloom/bloom_matrix.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace tind {
namespace {

TEST(BloomFilterTest, EmptyFilterContainsNothing) {
  const BloomFilter bf(512, 3);
  EXPECT_EQ(bf.CountSetBits(), 0u);
  EXPECT_FALSE(bf.MightContain(7));
  EXPECT_DOUBLE_EQ(bf.Density(), 0.0);
}

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bf(1024, 3);
  for (ValueId v = 0; v < 100; ++v) bf.Add(v * 13 + 1);
  for (ValueId v = 0; v < 100; ++v) EXPECT_TRUE(bf.MightContain(v * 13 + 1));
}

TEST(BloomFilterTest, LowFalsePositiveRateWhenSparse) {
  BloomFilter bf(4096, 3);
  for (ValueId v = 0; v < 28; ++v) bf.Add(v);  // Paper's avg cardinality.
  int fp = 0;
  for (ValueId v = 1000; v < 11000; ++v) fp += bf.MightContain(v) ? 1 : 0;
  EXPECT_LT(fp, 50);  // << 0.5% at this density.
}

TEST(BloomFilterTest, FromValueSet) {
  const ValueSet vs{1, 2, 3};
  const BloomFilter bf = BloomFilter::FromValueSet(vs, 512, 2);
  EXPECT_TRUE(bf.MightContain(1));
  EXPECT_TRUE(bf.MightContain(2));
  EXPECT_TRUE(bf.MightContain(3));
  EXPECT_LE(bf.CountSetBits(), 6u);
}

TEST(BloomFilterTest, SubsetRelationPreserved) {
  // The core MANY property: A ⊆ B implies h(A) bits ⊆ h(B) bits.
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ValueId> big;
    for (int i = 0; i < 40; ++i) big.push_back(static_cast<ValueId>(rng.Uniform(100000)));
    std::vector<ValueId> small;
    for (const ValueId v : big) {
      if (rng.Bernoulli(0.4)) small.push_back(v);
    }
    const BloomFilter bf_big =
        BloomFilter::FromValueSet(ValueSet::FromUnsorted(big), 1024, 3);
    const BloomFilter bf_small =
        BloomFilter::FromValueSet(ValueSet::FromUnsorted(small), 1024, 3);
    EXPECT_TRUE(bf_small.IsSubsetOf(bf_big));
  }
}

TEST(BloomFilterTest, NonSubsetUsuallyDetected) {
  // Disjoint sets in a large filter should practically never appear
  // contained.
  const BloomFilter a =
      BloomFilter::FromValueSet(ValueSet{1, 2, 3, 4, 5}, 4096, 3);
  const BloomFilter b =
      BloomFilter::FromValueSet(ValueSet{100, 200, 300}, 4096, 3);
  EXPECT_FALSE(b.IsSubsetOf(a));
}

TEST(BloomFilterTest, DensityGrowsWithValues) {
  BloomFilter bf(512, 3);
  const double d0 = bf.Density();
  for (ValueId v = 0; v < 50; ++v) bf.Add(v);
  EXPECT_GT(bf.Density(), d0);
  EXPECT_LE(bf.Density(), 1.0);
}

TEST(BloomFilterTest, MemoryUsage) {
  const BloomFilter bf(4096, 3);
  EXPECT_EQ(bf.MemoryUsageBytes(), 4096u / 8);
}

class BloomMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    matrix_ = BloomMatrix(512, 3, 5);
    // Column value sets: 0:{1,2}, 1:{1,2,3}, 2:{2}, 3:{10,11}, 4:{}.
    matrix_.SetColumn(0, ValueSet{1, 2});
    matrix_.SetColumn(1, ValueSet{1, 2, 3});
    matrix_.SetColumn(2, ValueSet{2});
    matrix_.SetColumn(3, ValueSet{10, 11});
  }
  BloomMatrix matrix_;
};

TEST_F(BloomMatrixTest, Geometry) {
  EXPECT_EQ(matrix_.num_bits(), 512u);
  EXPECT_EQ(matrix_.num_hashes(), 3u);
  EXPECT_EQ(matrix_.num_columns(), 5u);
  // 512 rows x 5 columns -> one 64-byte-aligned padded group per row.
  EXPECT_EQ(matrix_.MemoryUsageBytes(), 512u * 64);
}

TEST_F(BloomMatrixTest, SupersetQueryFindsContainingColumns) {
  const BloomFilter q = matrix_.MakeQueryFilter(ValueSet{1, 2});
  BitVector candidates(5, true);
  matrix_.QuerySupersets(q, &candidates);
  EXPECT_TRUE(candidates.Get(0));
  EXPECT_TRUE(candidates.Get(1));
  EXPECT_FALSE(candidates.Get(2));
  EXPECT_FALSE(candidates.Get(3));
  EXPECT_FALSE(candidates.Get(4));
}

TEST_F(BloomMatrixTest, SupersetQueryRespectsIncomingCandidates) {
  const BloomFilter q = matrix_.MakeQueryFilter(ValueSet{1, 2});
  BitVector candidates(5);
  candidates.Set(1);  // Only column 1 allowed in.
  matrix_.QuerySupersets(q, &candidates);
  EXPECT_FALSE(candidates.Get(0));
  EXPECT_TRUE(candidates.Get(1));
}

TEST_F(BloomMatrixTest, EmptyQueryKeepsAllCandidates) {
  const BloomFilter q = matrix_.MakeQueryFilter(ValueSet());
  BitVector candidates(5, true);
  matrix_.QuerySupersets(q, &candidates);
  EXPECT_EQ(candidates.Count(), 5u);
}

TEST_F(BloomMatrixTest, SubsetQueryFindsContainedColumns) {
  // Which columns are subsets of {1,2,3}? 0, 1, 2 and the empty 4.
  const BloomFilter q = matrix_.MakeQueryFilter(ValueSet{1, 2, 3});
  BitVector candidates(5, true);
  matrix_.QuerySubsets(q, &candidates);
  EXPECT_TRUE(candidates.Get(0));
  EXPECT_TRUE(candidates.Get(1));
  EXPECT_TRUE(candidates.Get(2));
  EXPECT_FALSE(candidates.Get(3));
  EXPECT_TRUE(candidates.Get(4));
}

TEST_F(BloomMatrixTest, ColumnContains) {
  const BloomFilter q = matrix_.MakeQueryFilter(ValueSet{1, 2});
  EXPECT_TRUE(matrix_.ColumnContains(q, 0));
  EXPECT_TRUE(matrix_.ColumnContains(q, 1));
  EXPECT_FALSE(matrix_.ColumnContains(q, 3));
}

/// Randomized agreement with exact set logic: Bloom answers must be a
/// superset of the true answers (no false negatives) in both directions.
TEST(BloomMatrixPropertyTest, NeverDropsTrueAnswers) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n_cols = 30;
    std::vector<ValueSet> sets;
    BloomMatrix matrix(1024, 3, n_cols);
    for (size_t c = 0; c < n_cols; ++c) {
      std::vector<ValueId> vals;
      const size_t card = 1 + rng.Uniform(20);
      for (size_t i = 0; i < card; ++i) {
        vals.push_back(static_cast<ValueId>(rng.Uniform(60)));
      }
      sets.push_back(ValueSet::FromUnsorted(std::move(vals)));
      matrix.SetColumn(c, sets.back());
    }
    std::vector<ValueId> qvals;
    for (size_t i = 0; i < 5; ++i) {
      qvals.push_back(static_cast<ValueId>(rng.Uniform(60)));
    }
    const ValueSet query = ValueSet::FromUnsorted(std::move(qvals));
    const BloomFilter qf = matrix.MakeQueryFilter(query);

    BitVector supersets(n_cols, true);
    matrix.QuerySupersets(qf, &supersets);
    BitVector subsets(n_cols, true);
    matrix.QuerySubsets(qf, &subsets);
    for (size_t c = 0; c < n_cols; ++c) {
      if (query.IsSubsetOf(sets[c])) {
        EXPECT_TRUE(supersets.Get(c)) << "trial " << trial << " col " << c;
      }
      if (sets[c].IsSubsetOf(query)) {
        EXPECT_TRUE(subsets.Get(c)) << "trial " << trial << " col " << c;
      }
    }
  }
}

/// Builds a random matrix + query filters and checks the batch kernels
/// word-for-word against the scalar reference. The geometry is chosen to
/// stress the kernel's boundaries: column counts that are not multiples of
/// 64, batch sizes straddling the 64-probe group, all-zero query filters
/// (supersets keep everything; subsets AND-NOT every row), and full-fill
/// matrices whose saturated rows defeat the early exits.
class BloomBatchPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BloomBatchPropertyTest, BatchMatchesScalarReference) {
  Rng rng(GetParam());
  // Deliberately awkward column counts (not multiples of the 64-bit word)
  // and enough columns to span several kBloomBatchBlockWords blocks.
  const size_t n_cols = 70 + rng.Uniform(1500);
  const size_t n_bits = 256;
  BloomMatrix matrix(n_bits, 3, n_cols);
  const bool full_fill = rng.Bernoulli(0.25);
  for (size_t c = 0; c < n_cols; ++c) {
    std::vector<ValueId> vals;
    const size_t card = full_fill ? 200 : rng.Uniform(12);
    for (size_t i = 0; i < card; ++i) {
      vals.push_back(static_cast<ValueId>(rng.Uniform(500)));
    }
    matrix.SetColumn(c, ValueSet::FromUnsorted(std::move(vals)));
  }
  for (const size_t batch : {size_t{1}, size_t{63}, size_t{64}, size_t{65},
                             size_t{130}}) {
    std::vector<BloomFilter> filters;
    filters.reserve(batch);
    std::vector<BitVector> batch_cand;
    std::vector<BitVector> scalar_cand;
    for (size_t b = 0; b < batch; ++b) {
      std::vector<ValueId> vals;
      // Mix empty (all-zero filter), tiny, and large query sets.
      const size_t card = b % 7 == 0 ? 0 : rng.Uniform(30);
      for (size_t i = 0; i < card; ++i) {
        vals.push_back(static_cast<ValueId>(rng.Uniform(500)));
      }
      filters.push_back(
          matrix.MakeQueryFilter(ValueSet::FromUnsorted(std::move(vals))));
      // Random (not all-true) incoming candidates: the kernels must narrow
      // whatever they are given, like the scalar calls do.
      BitVector cand(n_cols);
      for (size_t c = 0; c < n_cols; ++c) {
        if (rng.Bernoulli(0.8)) cand.Set(c);
      }
      scalar_cand.push_back(cand);
      batch_cand.push_back(std::move(cand));
    }
    for (const bool subsets : {false, true}) {
      std::vector<BitVector> batch_out = batch_cand;
      std::vector<BloomProbe> probes;
      for (size_t b = 0; b < batch; ++b) {
        probes.push_back(BloomProbe{&filters[b], &batch_out[b]});
      }
      std::vector<BitVector> scalar_out = scalar_cand;
      if (subsets) {
        matrix.QuerySubsetsBatch(probes);
        for (size_t b = 0; b < batch; ++b) {
          matrix.QuerySubsets(filters[b], &scalar_out[b]);
        }
      } else {
        matrix.QuerySupersetsBatch(probes);
        for (size_t b = 0; b < batch; ++b) {
          matrix.QuerySupersets(filters[b], &scalar_out[b]);
        }
      }
      for (size_t b = 0; b < batch; ++b) {
        for (size_t c = 0; c < n_cols; ++c) {
          ASSERT_EQ(batch_out[b].Get(c), scalar_out[b].Get(c))
              << (subsets ? "subsets" : "supersets") << " batch=" << batch
              << " b=" << b << " col=" << c << " n_cols=" << n_cols
              << " full_fill=" << full_fill;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, BloomBatchPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(BloomBatchTest, ZeroProbesIsANoOp) {
  const BloomMatrix matrix(128, 2, 10);
  matrix.QuerySupersetsBatch(nullptr, 0);
  matrix.QuerySubsetsBatch(nullptr, 0);
}

/// The stage-resumable Partial kernels must be equivalent to one full batch
/// call no matter where execution is suspended: processing a batch in
/// chunks of whole 64-probe groups — including lopsided chunkings and a
/// max_probes of 1 (rounds up to one group) — lands every probe's BitVector
/// in the same state as the uninterrupted call.
TEST(BloomBatchPartialTest, ChunkedResumptionMatchesFullBatch) {
  Rng rng(97);
  const size_t n_cols = 333;
  BloomMatrix matrix(256, 3, n_cols);
  for (size_t c = 0; c < n_cols; ++c) {
    std::vector<ValueId> vals;
    const size_t card = rng.Uniform(12);
    for (size_t i = 0; i < card; ++i) {
      vals.push_back(static_cast<ValueId>(rng.Uniform(500)));
    }
    matrix.SetColumn(c, ValueSet::FromUnsorted(std::move(vals)));
  }
  const size_t batch = 130;  // Two full groups + a ragged tail.
  std::vector<BloomFilter> filters;
  std::vector<BitVector> reference_cand;
  for (size_t b = 0; b < batch; ++b) {
    std::vector<ValueId> vals;
    const size_t card = b % 5 == 0 ? 0 : rng.Uniform(25);
    for (size_t i = 0; i < card; ++i) {
      vals.push_back(static_cast<ValueId>(rng.Uniform(500)));
    }
    filters.push_back(
        matrix.MakeQueryFilter(ValueSet::FromUnsorted(std::move(vals))));
    BitVector cand(n_cols);
    for (size_t c = 0; c < n_cols; ++c) {
      if (rng.Bernoulli(0.8)) cand.Set(c);
    }
    reference_cand.push_back(std::move(cand));
  }

  for (const bool subsets : {false, true}) {
    // Uninterrupted reference.
    std::vector<BitVector> full_out = reference_cand;
    std::vector<BloomProbe> full_probes;
    for (size_t b = 0; b < batch; ++b) {
      full_probes.push_back(BloomProbe{&filters[b], &full_out[b]});
    }
    if (subsets) {
      matrix.QuerySubsetsBatch(full_probes);
    } else {
      matrix.QuerySupersetsBatch(full_probes);
    }

    // Chunkings: per-group, lopsided, single-probe budget (rounds up to a
    // whole group), and everything-at-once.
    for (const size_t max_probes :
         {size_t{1}, size_t{64}, size_t{100}, size_t{500}}) {
      std::vector<BitVector> chunked_out = reference_cand;
      std::vector<BloomProbe> probes;
      for (size_t b = 0; b < batch; ++b) {
        probes.push_back(BloomProbe{&filters[b], &chunked_out[b]});
      }
      size_t begin = 0;
      size_t rounds = 0;
      while (begin < batch) {
        const size_t next =
            subsets ? matrix.QuerySubsetsBatchPartial(probes.data(), batch,
                                                      begin, max_probes)
                    : matrix.QuerySupersetsBatchPartial(probes.data(), batch,
                                                        begin, max_probes);
        ASSERT_GT(next, begin) << "no forward progress";
        ASSERT_EQ(next % 64 == 0 || next == batch, true)
            << "resume point must be a group boundary or the end";
        begin = next;
        ++rounds;
      }
      if (max_probes == 1) EXPECT_EQ(rounds, (batch + 63) / 64);
      for (size_t b = 0; b < batch; ++b) {
        for (size_t c = 0; c < n_cols; ++c) {
          ASSERT_EQ(chunked_out[b].Get(c), full_out[b].Get(c))
              << (subsets ? "subsets" : "supersets")
              << " max_probes=" << max_probes << " b=" << b << " col=" << c;
        }
      }
    }
  }
}

/// Restores the global metrics enabled flag.
class MetricsEnabledGuard {
 public:
  MetricsEnabledGuard() : previous_(obs::MetricsRegistry::Global().enabled()) {
    obs::MetricsRegistry::Global().set_enabled(true);
  }
  ~MetricsEnabledGuard() {
    obs::MetricsRegistry::Global().set_enabled(previous_);
  }

 private:
  bool previous_;
};

/// Regression for the ColumnContains early exit: a miss must stop probing
/// at the first absent row instead of walking every set bit of the query
/// filter. Observed via the "bloom/column_contains_rows_probed" counter,
/// so the test has nothing to measure when metrics are compiled out.
TEST(ColumnContainsRegressionTest, EarlyExitsOnMiss) {
#if TIND_OBS_DISABLED
  GTEST_SKIP() << "probe counting requires TIND_ENABLE_METRICS=ON";
#else
  MetricsEnabledGuard metrics;
  BloomMatrix matrix(512, 3, 2);
  // Column 0 stays empty (every row zero); column 1 contains the query.
  std::vector<ValueId> vals;
  for (ValueId v = 0; v < 30; ++v) vals.push_back(v);
  const ValueSet values = ValueSet::FromUnsorted(std::move(vals));
  matrix.SetColumn(1, values);
  const BloomFilter query = matrix.MakeQueryFilter(values);
  const size_t query_bits = query.CountSetBits();
  ASSERT_GT(query_bits, 10u);

  obs::Counter* probed = obs::MetricsRegistry::Global().GetCounter(
      "bloom/column_contains_rows_probed");
  const uint64_t before_miss = probed->value();
  EXPECT_FALSE(matrix.ColumnContains(query, 0));
  const uint64_t miss_probes = probed->value() - before_miss;
  // Column 0 misses on the very first set row of the query.
  EXPECT_EQ(miss_probes, 1u);

  const uint64_t before_hit = probed->value();
  EXPECT_TRUE(matrix.ColumnContains(query, 1));
  const uint64_t hit_probes = probed->value() - before_hit;
  // A hit has no early exit: every set bit of the query filter is probed.
  EXPECT_EQ(hit_probes, query_bits);
  EXPECT_LT(miss_probes, hit_probes);
#endif
}

}  // namespace
}  // namespace tind
