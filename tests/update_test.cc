/// Unit coverage of the live-ingest stack below the differential harness:
/// AppendVersion's builder semantics, ApplyDeltaToDataset validation and
/// failure atomicity, UpdateStats accounting, injected-fault behavior, the
/// ApplyDelta wire codec, CompactSnapshot byte-identity, and per-delta-kind
/// golden fixtures (tests/golden/update_*_expected.txt — see tests/README.md
/// for regeneration).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "scenario/mutate.h"
#include "serve/wire.h"
#include "snapshot/snapshot.h"
#include "snapshot/snapshot_format.h"
#include "temporal/weights.h"
#include "tind/index.h"
#include "tind/update.h"
#include "wiki/generator.h"

namespace tind {
namespace {

ValueSet Values(std::initializer_list<ValueId> ids) {
  return ValueSet::FromUnsorted(std::vector<ValueId>(ids));
}

Result<AttributeHistory> MakeHistory(const TimeDomain& domain) {
  AttributeHistoryBuilder builder(0, AttributeMeta{"p", "t", "c"}, domain);
  EXPECT_TRUE(builder.AddVersion(5, Values({1, 2})).ok());
  EXPECT_TRUE(builder.AddVersion(20, Values({2, 3})).ok());
  return builder.Finish();
}

TEST(AppendVersionTest, AppendsGrowTheHistoryAndAllValues) {
  const TimeDomain domain(100);
  auto history = MakeHistory(domain);
  ASSERT_TRUE(history.ok());
  ASSERT_TRUE(history->AppendVersion(40, Values({7})).ok());
  EXPECT_EQ(history->num_versions(), 3u);
  EXPECT_EQ(history->VersionAt(45), Values({7}));
  EXPECT_TRUE(history->AllValues().Contains(7));
  EXPECT_TRUE(history->AllValues().Contains(1));
}

TEST(AppendVersionTest, SameTimestampOverwritesAndMayCoalesce) {
  const TimeDomain domain(100);
  auto history = MakeHistory(domain);
  ASSERT_TRUE(history.ok());
  // Overwrite the version at t=20 with different values: still 2 versions.
  ASSERT_TRUE(history->AppendVersion(20, Values({9})).ok());
  EXPECT_EQ(history->num_versions(), 2u);
  EXPECT_EQ(history->VersionAt(20), Values({9}));
  // AllValues must have dropped the overwritten {2,3} remnant value 3.
  EXPECT_FALSE(history->AllValues().Contains(3));
  // Overwrite with values equal to the predecessor: the change point pops.
  ASSERT_TRUE(history->AppendVersion(20, Values({1, 2})).ok());
  EXPECT_EQ(history->num_versions(), 1u);
  EXPECT_EQ(history->VersionAt(50), Values({1, 2}));
}

TEST(AppendVersionTest, EqualToCurrentCoalescesAway) {
  const TimeDomain domain(100);
  auto history = MakeHistory(domain);
  ASSERT_TRUE(history.ok());
  ASSERT_TRUE(history->AppendVersion(60, Values({2, 3})).ok());
  EXPECT_EQ(history->num_versions(), 2u);  // No new change point.
}

TEST(AppendVersionTest, RejectsOutOfOrderAndOutOfDomain) {
  const TimeDomain domain(100);
  auto history = MakeHistory(domain);
  ASSERT_TRUE(history.ok());
  EXPECT_TRUE(history->AppendVersion(10, Values({1})).IsInvalidArgument());
  EXPECT_TRUE(history->AppendVersion(100, Values({1})).IsInvalidArgument());
  EXPECT_TRUE(history->AppendVersion(-1, Values({1})).IsInvalidArgument());
}

Dataset MakeCorpus(uint64_t seed) {
  wiki::GeneratorOptions gen;
  gen.seed = seed;
  gen.num_days = 120;
  gen.num_families = 3;
  gen.num_noise_attributes = 14;
  gen.num_drifter_attributes = 6;
  gen.num_catchall_attributes = 2;
  gen.shared_vocabulary = 100;
  gen.entities_per_family_pool = 60;
  auto generated = wiki::WikiGenerator(gen).GenerateDataset();
  EXPECT_TRUE(generated.ok());
  return std::move(generated->dataset);
}

TindIndexOptions IndexOpts(const WeightFunction* weight) {
  TindIndexOptions opts;
  opts.bloom_bits = 512;
  opts.num_hashes = 2;
  opts.num_slices = 6;
  opts.delta = 7;
  opts.epsilon = 3.0;
  opts.build_reverse_index = true;
  opts.reverse_slices = 2;
  opts.weight = weight;
  opts.seed = 99;
  return opts;
}

TEST(ApplyDeltaToDatasetTest, RejectsInvalidOpsWithoutSideEffects) {
  const Dataset corpus = MakeCorpus(31);
  const size_t base_dict = corpus.dictionary().size();

  RevisionDelta unknown;
  unknown.ops.emplace_back();
  unknown.ops.back().kind = RevisionOp::Kind::kAppendVersion;
  unknown.ops.back().attribute =
      static_cast<AttributeId>(corpus.size() + 5);
  unknown.ops.back().timestamp = 10;
  unknown.ops.back().values = {"x"};
  EXPECT_TRUE(ApplyDeltaToDataset(corpus, unknown)
                  .status()
                  .IsInvalidArgument());

  RevisionDelta empty_add;
  empty_add.ops.emplace_back();
  empty_add.ops.back().kind = RevisionOp::Kind::kAddAttribute;
  empty_add.ops.back().meta = AttributeMeta{"p", "t", "c"};
  EXPECT_FALSE(ApplyDeltaToDataset(corpus, empty_add).ok());

  // The base dataset (and its shared dictionary) must be untouched even
  // though the failing op may have interned values before being rejected —
  // the apply works on a deep copy.
  EXPECT_EQ(corpus.dictionary().size(), base_dict);
}

TEST(ApplyDeltaToDatasetTest, TracksDirtAndDictionaryGrowth) {
  const Dataset corpus = MakeCorpus(32);
  // Appends must come at or after each target's last change point.
  const Timestamp append_t = std::min(
      corpus.domain().last(),
      std::max<Timestamp>(corpus.attribute(2).change_timestamps().back() + 1,
                          corpus.domain().last() - 20));
  const Timestamp retire_t = std::min(
      corpus.domain().last(),
      std::max<Timestamp>(corpus.attribute(3).change_timestamps().back() + 1,
                          corpus.domain().last() - 10));
  ASSERT_TRUE(corpus.domain().Contains(append_t));
  ASSERT_TRUE(corpus.domain().Contains(retire_t));
  RevisionDelta delta;
  {
    RevisionOp op;
    op.kind = RevisionOp::Kind::kAppendVersion;
    op.attribute = 2;
    op.timestamp = append_t;
    op.values = {"a-value-no-generator-would-emit"};
    delta.ops.push_back(op);
  }
  {
    RevisionOp op;
    op.kind = RevisionOp::Kind::kRetireAttribute;
    op.attribute = 3;
    op.timestamp = retire_t;
    delta.ops.push_back(op);
  }
  auto applied = ApplyDeltaToDataset(corpus, delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_TRUE(applied->dictionary_grew);
  EXPECT_GT(applied->dataset->dictionary().size(),
            corpus.dictionary().size());
  ASSERT_EQ(applied->dirty.size(), 2u);
  EXPECT_EQ(applied->dirty.at(2), append_t);
  EXPECT_EQ(applied->dirty.at(3), retire_t);
  // Retire resolves to the empty set from t onward.
  EXPECT_EQ(applied->dataset->attribute(3).VersionAt(retire_t).size(), 0u);
  // The base is untouched (deep copy semantics).
  EXPECT_NE(corpus.attribute(3).VersionAt(retire_t).size(), 0u);
}

TEST(IndexUpdaterTest, StatsAccountForPatchingWork) {
  const Dataset corpus = MakeCorpus(33);
  const ConstantWeight weight(corpus.domain().num_timestamps());
  auto built = TindIndex::Build(corpus, IndexOpts(&weight));
  ASSERT_TRUE(built.ok());

  RevisionDelta delta;
  RevisionOp op;
  op.kind = RevisionOp::Kind::kAppendVersion;
  op.attribute = 1;
  // Append at the very end of the domain: only slices whose δ-expanded
  // interval reaches the last day can be dirty.
  op.timestamp = corpus.domain().last();
  op.values = {"late-breaking-value"};
  delta.ops.push_back(op);

  auto updated = IndexUpdater::ApplyDelta(**built, delta);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  const UpdateStats& stats = updated->stats;
  EXPECT_EQ(stats.attributes_touched, 1u);
  EXPECT_EQ(stats.versions_appended, 1u);
  EXPECT_EQ(stats.slices_rebuilt, 0u);
  EXPECT_FALSE(stats.slice_intervals_changed);
  EXPECT_GT(stats.slices_skipped, 0u)
      << "a domain-end append dirtied every slice; overlap pruning is dead";
  EXPECT_GE(stats.columns_reset, 1u);
  EXPECT_TRUE(stats.dictionary_dirty);
  EXPECT_TRUE(stats.attribute_meta_dirty);
  ASSERT_EQ(stats.slice_dirty.size(), (*built)->slice_intervals().size());
  size_t dirty_slices = 0;
  for (const bool d : stats.slice_dirty) dirty_slices += d ? 1 : 0;
  EXPECT_EQ(dirty_slices, stats.slices_patched);
}

TEST(IndexUpdaterTest, InjectedFaultsLeaveTheBaseServing) {
  const Dataset corpus = MakeCorpus(34);
  const ConstantWeight weight(corpus.domain().num_timestamps());
  auto built = TindIndex::Build(corpus, IndexOpts(&weight));
  ASSERT_TRUE(built.ok());
  const TindParams params{3.0, 7, &weight};
  const AttributeHistory& probe = corpus.attribute(0);
  const std::vector<AttributeId> before = (*built)->Search(probe, params);

  scenario::MutationSpec spec;
  spec.num_ops = 8;
  const RevisionDelta delta = scenario::MutateCorpus(corpus, 4, spec);
  for (const char* point : {"update/alloc", "update/patch"}) {
    ASSERT_TRUE(FaultInjector::Global()
                    .Configure(std::string(point) + "=1.0", 7)
                    .ok());
    auto updated = IndexUpdater::ApplyDelta(**built, delta);
    FaultInjector::Global().Reset();
    ASSERT_FALSE(updated.ok()) << point;
    EXPECT_TRUE(updated.status().IsOutOfMemory() ||
                updated.status().IsInternal())
        << point << ": " << updated.status().ToString();
    // The base index must be byte-for-byte unaffected by the failed apply.
    EXPECT_EQ((*built)->Search(probe, params), before) << point;
  }
  // And with faults cleared the same delta applies cleanly.
  auto updated = IndexUpdater::ApplyDelta(**built, delta);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
}

TEST(WireCodecTest, ApplyDeltaRoundTripsEveryOpKind) {
  const Dataset corpus = MakeCorpus(35);
  scenario::MutationSpec spec;
  spec.num_ops = 24;  // Defaults mix all three kinds.
  const RevisionDelta delta = scenario::MutateCorpus(corpus, 6, spec);
  const std::string payload = serve::EncodeApplyDeltaRequest(delta);
  auto decoded = serve::DecodeApplyDeltaRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->ops.size(), delta.ops.size());
  for (size_t i = 0; i < delta.ops.size(); ++i) {
    EXPECT_EQ(decoded->ops[i].kind, delta.ops[i].kind) << i;
    EXPECT_EQ(decoded->ops[i].attribute, delta.ops[i].attribute) << i;
    EXPECT_EQ(decoded->ops[i].timestamp, delta.ops[i].timestamp) << i;
    EXPECT_EQ(decoded->ops[i].values, delta.ops[i].values) << i;
    EXPECT_EQ(decoded->ops[i].meta.FullName(), delta.ops[i].meta.FullName())
        << i;
    EXPECT_EQ(decoded->ops[i].versions, delta.ops[i].versions) << i;
  }
  // Truncated payloads decode as typed errors, never crashes.
  for (const size_t cut : {payload.size() / 3, payload.size() - 1}) {
    EXPECT_TRUE(serve::DecodeApplyDeltaRequest(payload.substr(0, cut))
                    .status()
                    .IsInvalidArgument());
  }

  serve::ApplyDeltaResponse response;
  response.sequence = 42;
  response.attributes_touched = 3;
  response.slices_patched = 5;
  response.columns_reset = 9;
  auto response_decoded =
      serve::DecodeApplyDeltaResponse(serve::EncodeApplyDeltaResponse(response));
  ASSERT_TRUE(response_decoded.ok());
  EXPECT_EQ(response_decoded->sequence, 42u);
  EXPECT_EQ(response_decoded->attributes_touched, 3u);
  EXPECT_EQ(response_decoded->slices_patched, 5u);
  EXPECT_EQ(response_decoded->columns_reset, 9u);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CompactSnapshotTest, OutputIsByteIdenticalToFullSave) {
  const Dataset corpus = MakeCorpus(36);
  const ConstantWeight weight(corpus.domain().num_timestamps());
  auto built = TindIndex::Build(corpus, IndexOpts(&weight));
  ASSERT_TRUE(built.ok());
  const std::string base_path =
      ::testing::TempDir() + "/tind_update_base.tsnap";
  ASSERT_TRUE((*built)->SaveSnapshot(base_path).ok());

  // A small delta so most slice sections stay clean and get byte-reused.
  scenario::MutationSpec spec;
  spec.num_ops = 4;
  spec.add_weight = 0;
  spec.retire_weight = 0;
  spec.max_attributes_touched = 1;
  const RevisionDelta delta = scenario::MutateCorpus(corpus, 5, spec);
  auto updated = IndexUpdater::ApplyDelta(**built, delta);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  ASSERT_GT(updated->stats.slices_skipped, 0u)
      << "no clean slices: the reuse path is not actually exercised";

  const std::string full_path =
      ::testing::TempDir() + "/tind_update_full.tsnap";
  const std::string compact_path =
      ::testing::TempDir() + "/tind_update_compact.tsnap";
  ASSERT_TRUE(updated->index->SaveSnapshot(full_path).ok());
  const Status compacted = updated->index->CompactSnapshot(
      base_path, compact_path, updated->stats);
  ASSERT_TRUE(compacted.ok()) << compacted.ToString();

  EXPECT_EQ(ReadFileBytes(compact_path), ReadFileBytes(full_path))
      << "CompactSnapshot must be indistinguishable from SaveSnapshot";

  // And the compacted artifact round-trips through the loader.
  ASSERT_TRUE(snapshot::VerifySnapshot(compact_path).ok());
  SnapshotLoadOptions load;
  load.weight = &weight;
  auto loaded =
      TindIndex::LoadSnapshot(*updated->dataset, compact_path, load);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  std::remove(base_path.c_str());
  std::remove(full_path.c_str());
  std::remove(compact_path.c_str());
}

TEST(CompactSnapshotTest, CorruptPreviousArtifactIsRejected) {
  const Dataset corpus = MakeCorpus(37);
  const ConstantWeight weight(corpus.domain().num_timestamps());
  auto built = TindIndex::Build(corpus, IndexOpts(&weight));
  ASSERT_TRUE(built.ok());
  const std::string base_path =
      ::testing::TempDir() + "/tind_update_rot.tsnap";
  ASSERT_TRUE((*built)->SaveSnapshot(base_path).ok());

  // Flip one byte inside the slice-intervals payload — a section the
  // compactor always reuses when intervals are stable — so the reuse path
  // must notice the rot via the stored CRC.
  std::string bytes = ReadFileBytes(base_path);
  snapshot::FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  uint64_t target_offset = 0;
  for (uint32_t i = 0; i < header.section_count; ++i) {
    snapshot::SectionEntry entry;
    std::memcpy(&entry,
                bytes.data() + sizeof(header) + i * sizeof(entry),
                sizeof(entry));
    if (entry.id == snapshot::kSectionSliceIntervals) {
      ASSERT_GT(entry.size, 0u);
      target_offset = entry.offset;
      break;
    }
  }
  ASSERT_GT(target_offset, 0u) << "slice-intervals section not found";
  bytes[target_offset] = static_cast<char>(bytes[target_offset] ^ 0x40);
  {
    std::ofstream out(base_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  scenario::MutationSpec spec;
  spec.num_ops = 2;
  spec.add_weight = 0;
  spec.retire_weight = 0;
  spec.max_attributes_touched = 1;
  const RevisionDelta delta = scenario::MutateCorpus(corpus, 5, spec);
  auto updated = IndexUpdater::ApplyDelta(**built, delta);
  ASSERT_TRUE(updated.ok());
  const std::string out_path =
      ::testing::TempDir() + "/tind_update_rot_out.tsnap";
  const Status compacted =
      updated->index->CompactSnapshot(base_path, out_path, updated->stats);
  EXPECT_TRUE(compacted.IsIOError()) << compacted.ToString();
  std::remove(base_path.c_str());
  std::remove(out_path.c_str());
}

// ---- Golden fixtures: one per delta kind ----------------------------------
// Pins what each RevisionOp kind does to the served answers (results and
// patch stats) on a fixed corpus. Regenerate after an INTENDED change:
//   TIND_REGEN_GOLDEN=1 ./build/tests/update_test
// then inspect the diff of tests/golden/update_*_expected.txt and commit it
// with the change that explains it (the test fails while regenerating so a
// stale TIND_REGEN_GOLDEN cannot pass CI). See tests/README.md.

std::string GoldenPath(const std::string& kind) {
  return std::string(TIND_SOURCE_DIR) + "/tests/golden/update_" + kind +
         "_expected.txt";
}

std::string RenderDeltaGolden(const std::string& kind) {
  const Dataset corpus = MakeCorpus(424242);
  const ConstantWeight weight(corpus.domain().num_timestamps());
  auto built = TindIndex::Build(corpus, IndexOpts(&weight));
  if (!built.ok()) std::abort();

  scenario::MutationSpec spec;
  spec.num_ops = 6;
  spec.append_weight = kind == "append" ? 1.0 : 0.0;
  spec.add_weight = kind == "add" ? 1.0 : 0.0;
  spec.retire_weight = kind == "retire" ? 1.0 : 0.0;
  const RevisionDelta delta = scenario::MutateCorpus(corpus, 7, spec);
  auto updated = IndexUpdater::ApplyDelta(**built, delta);
  if (!updated.ok()) std::abort();

  std::ostringstream out;
  out << "# Live-ingest golden (" << kind << "): corpus seed 424242, delta "
      << "seed 7, " << spec.num_ops << " ops.\n";
  out << "# Regenerate: TIND_REGEN_GOLDEN=1 ./update_test (see tests/README.md)\n";
  const UpdateStats& s = updated->stats;
  out << "stats touched=" << s.attributes_touched << " added="
      << s.attributes_added << " retired=" << s.attributes_retired
      << " appended=" << s.versions_appended << " patched="
      << s.slices_patched << " skipped=" << s.slices_skipped << " rebuilt="
      << s.slices_rebuilt << " columns=" << s.columns_reset << " dict="
      << (s.dictionary_dirty ? 1 : 0) << "\n";
  const TindParams params{3.0, 7, &weight};
  const Dataset& dataset = *updated->dataset;
  for (size_t q = 0; q < dataset.size(); ++q) {
    const AttributeHistory& query =
        dataset.attribute(static_cast<AttributeId>(q));
    for (const bool forward : {true, false}) {
      const auto ids = forward
                           ? updated->index->Search(query, params)
                           : updated->index->ReverseSearch(query, params);
      out << (forward ? "F" : "R") << " " << q << ":";
      for (size_t i = 0; i < ids.size(); ++i) {
        out << (i == 0 ? " " : ",") << ids[i];
      }
      out << "\n";
    }
  }
  return out.str();
}

class UpdateGoldenTest : public ::testing::TestWithParam<const char*> {};

TEST_P(UpdateGoldenTest, DeltaKindMatchesGoldenFile) {
  const std::string kind = GetParam();
  const std::string actual = RenderDeltaGolden(kind);
  const std::string path = GoldenPath(kind);
  if (std::getenv("TIND_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    out.close();
    FAIL() << "regenerated " << path
           << "; unset TIND_REGEN_GOLDEN and rerun to verify";
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — regenerate with TIND_REGEN_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  std::istringstream actual_lines(actual);
  std::istringstream expected_lines(expected.str());
  std::string a, e;
  size_t line = 0;
  while (true) {
    const bool has_a = static_cast<bool>(std::getline(actual_lines, a));
    const bool has_e = static_cast<bool>(std::getline(expected_lines, e));
    ++line;
    if (!has_a && !has_e) break;
    ASSERT_TRUE(has_a) << "golden has extra line " << line << ": " << e;
    ASSERT_TRUE(has_e) << "output has extra line " << line << ": " << a;
    ASSERT_EQ(a, e) << "golden mismatch at line " << line;
  }
}

INSTANTIATE_TEST_SUITE_P(DeltaKinds, UpdateGoldenTest,
                         ::testing::Values("append", "add", "retire"));

}  // namespace
}  // namespace tind
