#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/thread_pool.h"
#include "temporal/weights.h"
#include "tind/index.h"
#include "wiki/generator.h"

/// \file batch_cancellation_test.cc
/// CancellationToken propagation through BatchSearch / BatchReverseSearch
/// (BatchExecOptions), and the degraded superset mode. The contracts under
/// test:
///  * a pre-cancelled query returns an empty result with stats.cancelled set
///    and a consistent (all-zero tail) funnel, without running validations;
///  * the *other* queries of the same batch are bit-identical to a run
///    without any tokens — cancellation never leaks across queries;
///  * cancellation observed mid-run terminates the batch without hanging;
///  * superset_only results are supersets of the exact results, flagged
///    degraded, with zero Algorithm-2 validations.

namespace tind {
namespace {

wiki::GeneratedDataset MakeCorpus(uint64_t seed) {
  wiki::GeneratorOptions gen;
  gen.seed = seed;
  gen.num_days = 150;
  gen.num_families = 3;
  gen.num_noise_attributes = 18;
  gen.num_drifter_attributes = 8;
  gen.num_catchall_attributes = 2;
  gen.shared_vocabulary = 120;
  gen.entities_per_family_pool = 80;
  auto generated = wiki::WikiGenerator(gen).GenerateDataset();
  if (!generated.ok()) std::abort();
  return std::move(*generated);
}

class BatchCancellationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = std::make_unique<wiki::GeneratedDataset>(MakeCorpus(29));
    const int64_t n_days = corpus_->dataset.domain().num_timestamps();
    weight_ = std::make_unique<ConstantWeight>(n_days);
    TindIndexOptions opts;
    opts.bloom_bits = 512;
    opts.num_hashes = 2;
    opts.num_slices = 6;
    opts.delta = 7;
    opts.epsilon = 3.0;
    opts.build_reverse_index = true;
    opts.reverse_slices = 2;
    opts.weight = weight_.get();
    auto built = TindIndex::Build(corpus_->dataset, opts);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    index_ = std::move(*built);
  }

  std::vector<const AttributeHistory*> AllQueries() const {
    std::vector<const AttributeHistory*> queries;
    for (size_t q = 0; q < corpus_->dataset.size(); ++q) {
      queries.push_back(
          &corpus_->dataset.attribute(static_cast<AttributeId>(q)));
    }
    return queries;
  }

  TindParams Params() const { return TindParams{3.0, 2, weight_.get()}; }

  std::unique_ptr<wiki::GeneratedDataset> corpus_;
  std::unique_ptr<ConstantWeight> weight_;
  std::unique_ptr<TindIndex> index_;
};

TEST_F(BatchCancellationTest, PreCancelledQueriesAreAbandonedOthersExact) {
  const auto queries = AllQueries();
  const size_t n = queries.size();
  const TindParams params = Params();

  for (const bool forward : {true, false}) {
    std::vector<QueryStats> baseline_stats;
    const auto baseline =
        forward
            ? index_->BatchSearch(queries, params, &baseline_stats)
            : index_->BatchReverseSearch(queries, params, &baseline_stats);

    // Cancel every third query before the batch starts.
    std::vector<CancellationToken> tokens(n);
    std::vector<const CancellationToken*> cancels(n, nullptr);
    std::set<size_t> cancelled_ids;
    for (size_t q = 0; q < n; ++q) {
      cancels[q] = &tokens[q];
      if (q % 3 == 1) {
        tokens[q].Cancel();
        cancelled_ids.insert(q);
      }
    }
    ASSERT_FALSE(cancelled_ids.empty());
    BatchExecOptions exec;
    exec.cancels = cancels.data();
    std::vector<QueryStats> stats;
    const auto results =
        forward ? index_->BatchSearch(queries, params, exec, &stats)
                : index_->BatchReverseSearch(queries, params, exec, &stats);

    for (size_t q = 0; q < n; ++q) {
      const std::string ctx =
          (forward ? "fwd q=" : "rev q=") + std::to_string(q);
      if (cancelled_ids.count(q)) {
        EXPECT_TRUE(stats[q].cancelled) << ctx;
        EXPECT_TRUE(results[q].empty()) << ctx;
        EXPECT_EQ(stats[q].num_results, 0u) << ctx;
        EXPECT_EQ(stats[q].validations, 0u) << ctx;
        // Funnel consistency: a pre-cancelled query's candidate set is
        // cleared before any stage runs, so the whole funnel reads zero.
        EXPECT_EQ(stats[q].initial_candidates, 0u) << ctx;
        EXPECT_EQ(stats[q].after_slices, 0u) << ctx;
        EXPECT_EQ(stats[q].after_exact_check, 0u) << ctx;
      } else {
        // Unaffected queries answer bit-identically to the token-free run.
        EXPECT_FALSE(stats[q].cancelled) << ctx;
        EXPECT_EQ(results[q], baseline[q]) << ctx;
        EXPECT_EQ(stats[q].num_results, baseline_stats[q].num_results) << ctx;
        EXPECT_EQ(stats[q].validations, baseline_stats[q].validations) << ctx;
        EXPECT_EQ(stats[q].initial_candidates,
                  baseline_stats[q].initial_candidates)
            << ctx;
        EXPECT_EQ(stats[q].after_slices, baseline_stats[q].after_slices)
            << ctx;
        EXPECT_EQ(stats[q].after_exact_check,
                  baseline_stats[q].after_exact_check)
            << ctx;
      }
    }
  }
}

TEST_F(BatchCancellationTest, NullAndDefaultTokensChangeNothing) {
  const auto queries = AllQueries();
  const TindParams params = Params();
  std::vector<QueryStats> baseline_stats;
  const auto baseline = index_->BatchSearch(queries, params, &baseline_stats);

  // Tokens present but never cancelled, plus a null entry: exact equality.
  std::vector<CancellationToken> tokens(queries.size());
  std::vector<const CancellationToken*> cancels(queries.size(), nullptr);
  for (size_t q = 0; q < queries.size(); q += 2) cancels[q] = &tokens[q];
  BatchExecOptions exec;
  exec.cancels = cancels.data();
  std::vector<QueryStats> stats;
  const auto results = index_->BatchSearch(queries, params, exec, &stats);
  ASSERT_EQ(results.size(), baseline.size());
  for (size_t q = 0; q < results.size(); ++q) {
    EXPECT_EQ(results[q], baseline[q]) << q;
    EXPECT_FALSE(stats[q].cancelled) << q;
    EXPECT_EQ(stats[q].validations, baseline_stats[q].validations) << q;
  }
}

TEST_F(BatchCancellationTest, MidRunCancellationTerminatesAndStaysConsistent) {
  const auto base_queries = AllQueries();
  const TindParams params = Params();
  // Inflate the batch so the run is long enough to catch mid-flight.
  std::vector<const AttributeHistory*> queries;
  for (int rep = 0; rep < 40; ++rep) {
    queries.insert(queries.end(), base_queries.begin(), base_queries.end());
  }
  const size_t n = queries.size();
  CancellationToken shared;  // One token across all queries (deadline style).
  std::vector<const CancellationToken*> cancels(n, &shared);
  BatchExecOptions exec;
  exec.cancels = cancels.data();

  std::vector<QueryStats> stats;
  std::vector<std::vector<AttributeId>> results;
  std::thread runner([&] {
    results = index_->BatchSearch(queries, params, exec, &stats);
  });
  shared.Cancel();
  runner.join();  // Must terminate promptly; a hang fails via test timeout.

  ASSERT_EQ(results.size(), n);
  ASSERT_EQ(stats.size(), n);
  std::vector<QueryStats> baseline_stats;
  const auto baseline =
      index_->BatchSearch(base_queries, params, &baseline_stats);
  for (size_t q = 0; q < n; ++q) {
    if (stats[q].cancelled) {
      // Abandoned: empty answer, zeroed tail of the funnel.
      EXPECT_TRUE(results[q].empty()) << q;
      EXPECT_EQ(stats[q].num_results, 0u) << q;
    } else {
      // Completed before the token was observed: exact answer.
      EXPECT_EQ(results[q], baseline[q % base_queries.size()]) << q;
    }
  }
}

TEST_F(BatchCancellationTest, SupersetModeIsASoundDegradedSuperset) {
  const auto queries = AllQueries();
  const TindParams params = Params();

  for (const bool forward : {true, false}) {
    std::vector<QueryStats> exact_stats;
    const auto exact =
        forward ? index_->BatchSearch(queries, params, &exact_stats)
                : index_->BatchReverseSearch(queries, params, &exact_stats);

    BatchExecOptions exec;
    exec.superset_only = true;
    std::vector<QueryStats> stats;
    const auto degraded =
        forward ? index_->BatchSearch(queries, params, exec, &stats)
                : index_->BatchReverseSearch(queries, params, exec, &stats);

    size_t total_superset = 0;
    for (size_t q = 0; q < queries.size(); ++q) {
      const std::string ctx =
          (forward ? "fwd q=" : "rev q=") + std::to_string(q);
      EXPECT_TRUE(stats[q].degraded) << ctx;
      EXPECT_FALSE(stats[q].cancelled) << ctx;
      // No Algorithm-2 validations in brown-out mode — that is the point.
      EXPECT_EQ(stats[q].validations, 0u) << ctx;
      // The degraded answer is exactly the post-slice candidate set...
      EXPECT_EQ(stats[q].num_results, stats[q].after_slices) << ctx;
      // ...whose funnel prefix matches the exact run's (stages 1-2 are
      // deterministic and unaffected by the mode switch).
      EXPECT_EQ(stats[q].initial_candidates,
                exact_stats[q].initial_candidates)
          << ctx;
      EXPECT_EQ(stats[q].after_slices, exact_stats[q].after_slices) << ctx;
      // ...and a superset of the exact answer.
      const std::set<AttributeId> superset(degraded[q].begin(),
                                           degraded[q].end());
      for (AttributeId id : exact[q]) {
        EXPECT_TRUE(superset.count(id)) << ctx << " missing " << id;
      }
      EXPECT_TRUE(std::is_sorted(degraded[q].begin(), degraded[q].end()))
          << ctx;
      total_superset += degraded[q].size();
    }
    // The corpus has Bloom false positives at 512 bits: the superset must be
    // a real superset somewhere, or this test proves nothing.
    size_t total_exact = 0;
    for (const auto& r : exact) total_exact += r.size();
    EXPECT_GE(total_superset, total_exact);
  }
}

TEST_F(BatchCancellationTest, SupersetModeWorksWithThreadPool) {
  const auto queries = AllQueries();
  const TindParams params = Params();
  ThreadPool pool(3);
  BatchExecOptions exec;
  exec.superset_only = true;
  std::vector<QueryStats> pooled_stats;
  const auto pooled =
      index_->BatchSearch(queries, params, exec, &pooled_stats, &pool);
  std::vector<QueryStats> serial_stats;
  const auto serial =
      index_->BatchSearch(queries, params, exec, &serial_stats);
  ASSERT_EQ(pooled.size(), serial.size());
  for (size_t q = 0; q < pooled.size(); ++q) {
    EXPECT_EQ(pooled[q], serial[q]) << q;
    EXPECT_EQ(pooled_stats[q].after_slices, serial_stats[q].after_slices) << q;
  }
}

}  // namespace
}  // namespace tind
