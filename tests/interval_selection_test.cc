#include "tind/interval_selection.h"

#include <gtest/gtest.h>

#include <numeric>

#include "scenario/scenario.h"
#include "test_util.h"

namespace tind {
namespace {

TEST(IntervalLengthTest, ConstantWeightGivesEpsilonPlusOne) {
  const TimeDomain domain(1000);
  const ConstantWeight w(1000);
  // Target sum = eps + 1; with unit weights that is eps+1 days.
  EXPECT_EQ(IntervalLengthAt(w, domain, 0, 3.0), 4);
  EXPECT_EQ(IntervalLengthAt(w, domain, 500, 0.0), 1);
  EXPECT_EQ(IntervalLengthAt(w, domain, 0, 9.5), 11);
}

TEST(IntervalLengthTest, ClampsAtDomainEnd) {
  const TimeDomain domain(100);
  const ConstantWeight w(100);
  EXPECT_EQ(IntervalLengthAt(w, domain, 98, 5.0), 2);  // Only 2 days left.
}

TEST(IntervalLengthTest, DecayingWeightsNeedLongerPastIntervals) {
  const int64_t n = 2000;
  const TimeDomain domain(n);
  const ExponentialDecayWeight w(n, 0.995);
  const int64_t early = IntervalLengthAt(w, domain, 100, 3.0);
  const int64_t late = IntervalLengthAt(w, domain, n - 200, 3.0);
  // Early (low-weight) intervals must be longer to reach the same summed
  // weight (Section 4.4.2).
  EXPECT_GT(early, late);
  // The returned length actually reaches the target where possible.
  EXPECT_GE(w.Sum(Interval{n - 200, n - 200 + late - 1}), 4.0 - 1e-9);
}

class IntervalSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(5);
    dataset_ = Dataset(TimeDomain(500), std::make_shared<ValueDictionary>());
    for (int i = 0; i < 30; ++i) {
      dataset_.Add(testutil::RandomHistory(dataset_.domain(), &rng, 50,
                                           static_cast<AttributeId>(i)));
    }
  }
  Dataset dataset_;
};

TEST_F(IntervalSelectionTest, RandomSelectionDisjointAndSized) {
  const ConstantWeight w(500);
  IntervalSelectionOptions opts;
  opts.strategy = SliceStrategy::kRandom;
  opts.num_intervals = 8;
  opts.epsilon = 3.0;
  const auto intervals = SelectIndexIntervals(dataset_, w, opts);
  ASSERT_EQ(intervals.size(), 8u);
  for (size_t i = 0; i < intervals.size(); ++i) {
    EXPECT_EQ(intervals[i].Length(), 4);
    EXPECT_GE(intervals[i].begin, 0);
    EXPECT_LT(intervals[i].end, 500);
    for (size_t j = i + 1; j < intervals.size(); ++j) {
      EXPECT_FALSE(intervals[i].Intersects(intervals[j]));
    }
  }
  // Sorted by start.
  for (size_t i = 1; i < intervals.size(); ++i) {
    EXPECT_LT(intervals[i - 1].begin, intervals[i].begin);
  }
}

TEST_F(IntervalSelectionTest, DeltaDisjointSpacing) {
  const ConstantWeight w(500);
  IntervalSelectionOptions opts;
  opts.num_intervals = 6;
  opts.epsilon = 3.0;
  opts.delta_disjoint = 10;
  const auto intervals = SelectIndexIntervals(dataset_, w, opts);
  ASSERT_GE(intervals.size(), 2u);
  for (size_t i = 0; i < intervals.size(); ++i) {
    for (size_t j = i + 1; j < intervals.size(); ++j) {
      EXPECT_FALSE(intervals[i].Expanded(10).Intersects(
          intervals[j].Expanded(10)));
    }
  }
}

TEST_F(IntervalSelectionTest, DeterministicInSeed) {
  const ConstantWeight w(500);
  IntervalSelectionOptions opts;
  opts.num_intervals = 5;
  opts.seed = 99;
  const auto a = SelectIndexIntervals(dataset_, w, opts);
  const auto b = SelectIndexIntervals(dataset_, w, opts);
  EXPECT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  opts.seed = 100;
  const auto c = SelectIndexIntervals(dataset_, w, opts);
  bool any_diff = c.size() != a.size();
  for (size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = !(a[i] == c[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(IntervalSelectionTest, WeightedRandomSelectsDisjoint) {
  const ConstantWeight w(500);
  IntervalSelectionOptions opts;
  opts.strategy = SliceStrategy::kWeightedRandom;
  opts.num_intervals = 6;
  opts.epsilon = 3.0;
  opts.candidate_starts = 64;
  const auto intervals = SelectIndexIntervals(dataset_, w, opts);
  ASSERT_GE(intervals.size(), 2u);
  for (size_t i = 0; i < intervals.size(); ++i) {
    for (size_t j = i + 1; j < intervals.size(); ++j) {
      EXPECT_FALSE(intervals[i].Intersects(intervals[j]));
    }
  }
}

TEST_F(IntervalSelectionTest, WeightedRandomPrefersDenseRegions) {
  // Build a dataset where all value activity is in days [400, 499].
  Dataset dense(TimeDomain(500), std::make_shared<ValueDictionary>());
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    AttributeHistoryBuilder b(static_cast<AttributeId>(i), {}, dense.domain());
    // Constant tiny set early, rich churn late.
    EXPECT_TRUE(b.AddVersion(0, ValueSet{0}).ok());
    for (Timestamp t = 400; t < 499; t += 9) {
      std::vector<ValueId> vals;
      for (int v = 0; v < 12; ++v) {
        vals.push_back(static_cast<ValueId>(rng.Uniform(500)));
      }
      EXPECT_TRUE(b.AddVersion(t, ValueSet::FromUnsorted(std::move(vals))).ok());
    }
    dense.Add(std::move(*b.Finish()));
  }
  const ConstantWeight w(500);
  IntervalSelectionOptions opts;
  opts.strategy = SliceStrategy::kWeightedRandom;
  opts.num_intervals = 3;
  opts.epsilon = 3.0;
  opts.candidate_starts = 100;
  const auto intervals = SelectIndexIntervals(dense, w, opts);
  ASSERT_GE(intervals.size(), 1u);
  size_t in_dense_region = 0;
  for (const Interval& i : intervals) {
    if (i.begin >= 350) ++in_dense_region;
  }
  EXPECT_GE(in_dense_region, intervals.size() - 1);
}

TEST_F(IntervalSelectionTest, ZeroIntervalsRequested) {
  const ConstantWeight w(500);
  IntervalSelectionOptions opts;
  opts.num_intervals = 0;
  EXPECT_TRUE(SelectIndexIntervals(dataset_, w, opts).empty());
}

TEST_F(IntervalSelectionTest, MoreIntervalsThanFitReturnsFewer) {
  const ConstantWeight w(500);
  IntervalSelectionOptions opts;
  opts.num_intervals = 1000;  // 1000 disjoint length-4 intervals don't fit.
  opts.epsilon = 3.0;
  const auto intervals = SelectIndexIntervals(dataset_, w, opts);
  EXPECT_LT(intervals.size(), 1000u);
  EXPECT_GT(intervals.size(), 10u);
}

TEST(PruningPowerTest, CountsDistinctValuesPerDay) {
  Dataset dataset(TimeDomain(100), std::make_shared<ValueDictionary>());
  dataset.Add(testutil::MakeHistory(dataset.domain(),
                                    {{0, ValueSet{1, 2, 3}}}, 0));
  dataset.Add(testutil::MakeHistory(dataset.domain(),
                                    {{0, ValueSet{1}}, {50, ValueSet{4, 5}}},
                                    1));
  const std::vector<size_t> sample{0, 1};
  // Interval [0,9]: attr0 has 3 distinct, attr1 has 1 -> 4/10.
  EXPECT_DOUBLE_EQ(EstimatePruningPower(dataset, sample, Interval{0, 9}), 0.4);
  // Interval [45,54]: attr0 3, attr1 {1,4,5} = 3 -> 6/10.
  EXPECT_DOUBLE_EQ(EstimatePruningPower(dataset, sample, Interval{45, 54}),
                   0.6);
}

TEST(SliceStrategyTest, Names) {
  EXPECT_STREQ(SliceStrategyToString(SliceStrategy::kRandom), "random");
  EXPECT_STREQ(SliceStrategyToString(SliceStrategy::kWeightedRandom),
               "weighted-random");
}

/// Property over seeded scenario corpora: the sampled p(I) estimate that
/// drives weighted-random placement (and seeds the cost-model planner)
/// tracks the full-corpus pruning power — the sample is a faithful proxy —
/// and the placements it picks realize at least the pruning power of
/// uniform-random placement on the same corpus.
TEST(PruningPowerPropertyTest, SampledEstimateTracksRealizedPower) {
  double weighted_total = 0;
  double random_total = 0;
  for (const uint64_t seed : {uint64_t{11}, uint64_t{12}, uint64_t{13}}) {
    scenario::ScenarioSpec spec;
    spec.name = "pruning-power-property";
    spec.seed = seed;
    spec.corpus.attributes = 160;
    spec.corpus.days = 250;
    auto corpus = scenario::MaterializeCorpus(spec);
    ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
    const Dataset& dataset = corpus->dataset;
    ASSERT_GE(dataset.size(), 32u);

    // Full-corpus ("realized") pruning power vs the selection-time sample.
    std::vector<size_t> everyone(dataset.size());
    std::iota(everyone.begin(), everyone.end(), 0);
    const size_t sample_size = dataset.size() / 4;
    std::vector<size_t> sample(sample_size);
    std::iota(sample.begin(), sample.end(), 0);

    const ConstantWeight w(dataset.domain().num_timestamps());
    IntervalSelectionOptions opts;
    opts.num_intervals = 6;
    opts.epsilon = 3.0;
    opts.seed = seed * 7 + 1;
    opts.candidate_starts = 64;
    opts.pruning_sample = sample_size;

    opts.strategy = SliceStrategy::kWeightedRandom;
    const auto weighted = SelectIndexIntervals(dataset, w, opts);
    opts.strategy = SliceStrategy::kRandom;
    const auto random = SelectIndexIntervals(dataset, w, opts);
    ASSERT_GE(weighted.size(), 2u);
    ASSERT_GE(random.size(), 2u);

    double weighted_realized = 0;
    for (const Interval& interval : weighted) {
      // EstimatePruningPower sums over the attributes it is given, so
      // estimates over differently-sized samples compare per attribute.
      const double estimated =
          EstimatePruningPower(dataset, sample, interval) /
          static_cast<double>(sample.size());
      const double realized =
          EstimatePruningPower(dataset, everyone, interval) /
          static_cast<double>(everyone.size());
      weighted_realized += realized;
      // Tracking: the quarter-corpus per-attribute estimate stays within
      // 3x of the full-corpus value in both directions (the generator's
      // corpora are heterogeneous, so a sloppy sample would blow well
      // past this).
      EXPECT_GT(realized, 0.0) << "seed=" << seed;
      EXPECT_LE(estimated, realized * 3.0) << "seed=" << seed;
      EXPECT_GE(estimated, realized / 3.0) << "seed=" << seed;
    }
    double random_realized = 0;
    for (const Interval& interval : random) {
      random_realized += EstimatePruningPower(dataset, everyone, interval) /
                         static_cast<double>(everyone.size());
    }
    weighted_total += weighted_realized / static_cast<double>(weighted.size());
    random_total += random_realized / static_cast<double>(random.size());
  }
  // Aggregated over the seeds, weighted-random placement must realize at
  // least uniform-random's pruning power (Figure 13's small-k regime; a
  // single seed may tie, the average must not lose).
  EXPECT_GE(weighted_total, random_total * 0.95)
      << "weighted=" << weighted_total << " random=" << random_total;
}

}  // namespace
}  // namespace tind
