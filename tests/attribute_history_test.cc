#include "temporal/attribute_history.h"

#include <gtest/gtest.h>

#include "temporal/dataset.h"

namespace tind {
namespace {

AttributeHistory MakeHistory(
    const TimeDomain& domain,
    const std::vector<std::pair<Timestamp, ValueSet>>& versions,
    AttributeId id = 0) {
  AttributeHistoryBuilder b(id, AttributeMeta{"p", "t", "c"}, domain);
  for (const auto& [ts, values] : versions) {
    EXPECT_TRUE(b.AddVersion(ts, values).ok());
  }
  auto result = b.Finish();
  EXPECT_TRUE(result.ok());
  return std::move(result).ValueOrDie();
}

TEST(AttributeHistoryBuilderTest, RejectsOutOfDomainTimestamp) {
  AttributeHistoryBuilder b(0, {}, TimeDomain(10));
  EXPECT_TRUE(b.AddVersion(10, ValueSet{1}).IsInvalidArgument());
  EXPECT_TRUE(b.AddVersion(-1, ValueSet{1}).IsInvalidArgument());
}

TEST(AttributeHistoryBuilderTest, RejectsDecreasingTimestamps) {
  AttributeHistoryBuilder b(0, {}, TimeDomain(10));
  ASSERT_TRUE(b.AddVersion(5, ValueSet{1}).ok());
  EXPECT_TRUE(b.AddVersion(4, ValueSet{2}).IsInvalidArgument());
}

TEST(AttributeHistoryBuilderTest, SameDayLaterObservationWins) {
  AttributeHistoryBuilder b(0, {}, TimeDomain(10));
  ASSERT_TRUE(b.AddVersion(2, ValueSet{1}).ok());
  ASSERT_TRUE(b.AddVersion(2, ValueSet{2}).ok());
  const auto h = b.Finish();
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_versions(), 1u);
  EXPECT_EQ(h->VersionAt(2), (ValueSet{2}));
}

TEST(AttributeHistoryBuilderTest, SameDayOverwriteCoalescesWithPredecessor) {
  AttributeHistoryBuilder b(0, {}, TimeDomain(10));
  ASSERT_TRUE(b.AddVersion(1, ValueSet{7}).ok());
  ASSERT_TRUE(b.AddVersion(3, ValueSet{8}).ok());
  ASSERT_TRUE(b.AddVersion(3, ValueSet{7}).ok());  // Back to the old value.
  const auto h = b.Finish();
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_versions(), 1u);
}

TEST(AttributeHistoryBuilderTest, CoalescesIdenticalConsecutiveVersions) {
  AttributeHistoryBuilder b(0, {}, TimeDomain(10));
  ASSERT_TRUE(b.AddVersion(1, ValueSet{1, 2}).ok());
  ASSERT_TRUE(b.AddVersion(5, ValueSet{2, 1}).ok());  // Same set.
  ASSERT_TRUE(b.AddVersion(7, ValueSet{3}).ok());
  const auto h = b.Finish();
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_versions(), 2u);
}

TEST(AttributeHistoryBuilderTest, LeadingEmptyObservationSkipped) {
  AttributeHistoryBuilder b(0, {}, TimeDomain(10));
  ASSERT_TRUE(b.AddVersion(1, ValueSet()).ok());
  ASSERT_TRUE(b.AddVersion(3, ValueSet{1}).ok());
  const auto h = b.Finish();
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->birth(), 3);
}

TEST(AttributeHistoryBuilderTest, EmptyHistoryFails) {
  AttributeHistoryBuilder b(0, {}, TimeDomain(10));
  EXPECT_TRUE(b.Finish().status().IsInvalidArgument());
}

TEST(AttributeHistoryBuilderTest, DoubleFinishFails) {
  AttributeHistoryBuilder b(0, {}, TimeDomain(10));
  ASSERT_TRUE(b.AddVersion(0, ValueSet{1}).ok());
  ASSERT_TRUE(b.Finish().ok());
  EXPECT_TRUE(b.Finish().status().IsFailedPrecondition());
  EXPECT_TRUE(b.AddVersion(5, ValueSet{2}).IsFailedPrecondition());
}

TEST(AttributeHistoryTest, VersionAtResolvesByBinarySearch) {
  const TimeDomain domain(20);
  const AttributeHistory h = MakeHistory(
      domain, {{2, ValueSet{1}}, {5, ValueSet{1, 2}}, {10, ValueSet{3}}});
  EXPECT_TRUE(h.VersionAt(0).empty());  // Before birth: unobservable.
  EXPECT_TRUE(h.VersionAt(1).empty());
  EXPECT_EQ(h.VersionAt(2), (ValueSet{1}));
  EXPECT_EQ(h.VersionAt(4), (ValueSet{1}));
  EXPECT_EQ(h.VersionAt(5), (ValueSet{1, 2}));
  EXPECT_EQ(h.VersionAt(9), (ValueSet{1, 2}));
  EXPECT_EQ(h.VersionAt(10), (ValueSet{3}));
  EXPECT_EQ(h.VersionAt(19), (ValueSet{3}));  // Last version persists.
}

TEST(AttributeHistoryTest, CountsAndBirth) {
  const TimeDomain domain(20);
  const AttributeHistory h = MakeHistory(
      domain, {{2, ValueSet{1}}, {5, ValueSet{2}}, {10, ValueSet{3}}});
  EXPECT_EQ(h.num_versions(), 3u);
  EXPECT_EQ(h.num_changes(), 2u);  // 3 versions == 2 changes.
  EXPECT_EQ(h.birth(), 2);
  EXPECT_EQ(h.LifetimeTimestamps(), 18);
}

TEST(AttributeHistoryTest, ValidityIntervals) {
  const TimeDomain domain(20);
  const AttributeHistory h =
      MakeHistory(domain, {{2, ValueSet{1}}, {5, ValueSet{2}}});
  EXPECT_EQ(h.ValidityInterval(0), (Interval{2, 4}));
  EXPECT_EQ(h.ValidityInterval(1), (Interval{5, 19}));
}

TEST(AttributeHistoryTest, VersionRangeInInterval) {
  const TimeDomain domain(30);
  const AttributeHistory h = MakeHistory(
      domain, {{5, ValueSet{1}}, {10, ValueSet{2}}, {20, ValueSet{3}}});
  // Entirely before birth.
  EXPECT_EQ(h.VersionRangeInInterval(Interval{0, 4}).second, -1);
  // Spanning birth.
  EXPECT_EQ(h.VersionRangeInInterval(Interval{0, 7}), (std::pair<int64_t, int64_t>{0, 0}));
  // Middle.
  EXPECT_EQ(h.VersionRangeInInterval(Interval{6, 12}),
            (std::pair<int64_t, int64_t>{0, 1}));
  // All.
  EXPECT_EQ(h.VersionRangeInInterval(Interval{0, 29}),
            (std::pair<int64_t, int64_t>{0, 2}));
  // Clamping beyond the domain.
  EXPECT_EQ(h.VersionRangeInInterval(Interval{25, 99}),
            (std::pair<int64_t, int64_t>{2, 2}));
  // Single timestamp.
  EXPECT_EQ(h.VersionRangeInInterval(Interval{10, 10}),
            (std::pair<int64_t, int64_t>{1, 1}));
}

TEST(AttributeHistoryTest, UnionInInterval) {
  const TimeDomain domain(30);
  const AttributeHistory h = MakeHistory(
      domain, {{5, ValueSet{1}}, {10, ValueSet{2}}, {20, ValueSet{3}}});
  EXPECT_EQ(h.UnionInInterval(Interval{0, 4}), ValueSet());
  EXPECT_EQ(h.UnionInInterval(Interval{5, 9}), (ValueSet{1}));
  EXPECT_EQ(h.UnionInInterval(Interval{9, 10}), (ValueSet{1, 2}));
  EXPECT_EQ(h.UnionInInterval(Interval{0, 29}), (ValueSet{1, 2, 3}));
  EXPECT_EQ(h.UnionInInterval(Interval{-5, 6}), (ValueSet{1}));
}

TEST(AttributeHistoryTest, AllValuesCached) {
  const TimeDomain domain(10);
  const AttributeHistory h =
      MakeHistory(domain, {{0, ValueSet{1, 2}}, {5, ValueSet{2, 3}}});
  EXPECT_EQ(h.AllValues(), (ValueSet{1, 2, 3}));
}

TEST(AttributeHistoryTest, MedianCardinality) {
  const TimeDomain domain(10);
  const AttributeHistory h = MakeHistory(
      domain,
      {{0, ValueSet{1}}, {2, ValueSet{1, 2, 3}}, {4, ValueSet{1, 2, 3, 4, 5}}});
  EXPECT_EQ(h.MedianCardinality(), 3u);
}

TEST(AttributeHistoryTest, ForEachVersionCoversTimeline) {
  const TimeDomain domain(10);
  const AttributeHistory h =
      MakeHistory(domain, {{1, ValueSet{1}}, {6, ValueSet{2}}});
  std::vector<Interval> intervals;
  h.ForEachVersion([&](const ValueSet&, const Interval& i) {
    intervals.push_back(i);
  });
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], (Interval{1, 5}));
  EXPECT_EQ(intervals[1], (Interval{6, 9}));
}

TEST(AttributeHistoryTest, DeletionYieldsEmptyVersion) {
  const TimeDomain domain(10);
  AttributeHistoryBuilder b(0, {}, domain);
  ASSERT_TRUE(b.AddVersion(1, ValueSet{1}).ok());
  ASSERT_TRUE(b.AddDeletion(5).ok());
  const auto h = b.Finish();
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_versions(), 2u);
  EXPECT_TRUE(h->VersionAt(7).empty());
  EXPECT_EQ(h->VersionAt(3), (ValueSet{1}));
}

TEST(AttributeHistoryTest, MetaAndId) {
  const TimeDomain domain(5);
  AttributeHistoryBuilder b(42, AttributeMeta{"Page", "Table", "Col"}, domain);
  ASSERT_TRUE(b.AddVersion(0, ValueSet{1}).ok());
  const auto h = b.Finish();
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->id(), 42u);
  EXPECT_EQ(h->meta().FullName(), "Page/Table/Col");
}

TEST(DatasetTest, StatsComputation) {
  Dataset dataset(TimeDomain(365 * 4), std::make_shared<ValueDictionary>());
  ValueDictionary* dict = dataset.mutable_dictionary();
  const ValueId a = dict->Intern("a");
  const ValueId b = dict->Intern("b");
  AttributeHistoryBuilder b0(0, {}, dataset.domain());
  ASSERT_TRUE(b0.AddVersion(0, ValueSet{a}).ok());
  ASSERT_TRUE(b0.AddVersion(10, ValueSet{a, b}).ok());
  dataset.Add(std::move(*b0.Finish()));
  AttributeHistoryBuilder b1(1, {}, dataset.domain());
  ASSERT_TRUE(b1.AddVersion(365 * 2, ValueSet{b}).ok());
  dataset.Add(std::move(*b1.Finish()));

  const DatasetStats stats = dataset.ComputeStats();
  EXPECT_EQ(stats.num_attributes, 2u);
  EXPECT_EQ(stats.num_distinct_values, 2u);
  EXPECT_DOUBLE_EQ(stats.avg_changes, 0.5);  // (1 + 0) / 2.
  EXPECT_EQ(stats.total_versions, 3u);
  // Avg cardinality: (1 + 2 + 1) / 3.
  EXPECT_NEAR(stats.avg_version_cardinality, 4.0 / 3, 1e-12);
  // Lifetimes: 1460 and 730 days -> avg 1095 days = 3 years.
  EXPECT_NEAR(stats.avg_lifetime_years, 1095.0 / 365.25, 1e-9);
  EXPECT_GT(stats.memory_bytes, 0u);
}

}  // namespace
}  // namespace tind
