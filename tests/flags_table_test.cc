#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

namespace tind {
namespace {

Flags ParseArgs(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& a : storage) argv.push_back(a.data());
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesKeyValue) {
  const Flags f = ParseArgs({"--attributes=5000", "--name=hello"});
  EXPECT_TRUE(f.Has("attributes"));
  EXPECT_EQ(f.GetInt("attributes", 0), 5000);
  EXPECT_EQ(f.GetString("name", ""), "hello");
}

TEST(FlagsTest, DefaultsWhenMissing) {
  const Flags f = ParseArgs({});
  EXPECT_FALSE(f.Has("x"));
  EXPECT_EQ(f.GetInt("x", 7), 7);
  EXPECT_EQ(f.GetDouble("x", 2.5), 2.5);
  EXPECT_EQ(f.GetString("x", "d"), "d");
  EXPECT_TRUE(f.GetBool("x", true));
}

TEST(FlagsTest, BareFlagIsTrue) {
  const Flags f = ParseArgs({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false));
}

TEST(FlagsTest, BoolSpellings) {
  EXPECT_TRUE(ParseArgs({"--a=true"}).GetBool("a", false));
  EXPECT_TRUE(ParseArgs({"--a=1"}).GetBool("a", false));
  EXPECT_TRUE(ParseArgs({"--a=yes"}).GetBool("a", false));
  EXPECT_FALSE(ParseArgs({"--a=false"}).GetBool("a", true));
  EXPECT_FALSE(ParseArgs({"--a=0"}).GetBool("a", true));
}

TEST(FlagsTest, DoubleParsing) {
  const Flags f = ParseArgs({"--eps=3.5"});
  EXPECT_DOUBLE_EQ(f.GetDouble("eps", 0), 3.5);
}

TEST(FlagsTest, PositionalArguments) {
  const Flags f = ParseArgs({"input.txt", "--k=2", "other"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "other");
  EXPECT_EQ(f.GetInt("k", 0), 2);
}

TEST(FlagsTest, IntList) {
  const Flags f = ParseArgs({"--sizes=1,2,40"});
  EXPECT_EQ(f.GetIntList("sizes", {}), (std::vector<int64_t>{1, 2, 40}));
  EXPECT_EQ(f.GetIntList("missing", {9}), (std::vector<int64_t>{9}));
}

TEST(FlagsTest, DoubleList) {
  const Flags f = ParseArgs({"--eps=0.5,1,2.25"});
  EXPECT_EQ(f.GetDoubleList("eps", {}), (std::vector<double>{0.5, 1, 2.25}));
}

TEST(FlagsTest, EmptyListEntriesSkipped) {
  const Flags f = ParseArgs({"--sizes=1,,2"});
  EXPECT_EQ(f.GetIntList("sizes", {}), (std::vector<int64_t>{1, 2}));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::ostringstream os;
  t.Print(os, "Title");
  const std::string out = os.str();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::FormatInt(-7), "-7");
  EXPECT_EQ(TablePrinter::FormatPercent(0.5, 1), "50.0%");
}

TEST(TablePrinterTest, RowCount) {
  TablePrinter t({"x"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  // Burn a little CPU.
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1000 * 0.5);
  const double before = sw.ElapsedSeconds();
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), before + 1.0);
}

}  // namespace
}  // namespace tind
