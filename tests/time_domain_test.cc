#include "temporal/time_domain.h"

#include <gtest/gtest.h>

namespace tind {
namespace {

TEST(IntervalTest, LengthAndContains) {
  const Interval i{3, 7};
  EXPECT_EQ(i.Length(), 5);
  EXPECT_TRUE(i.Contains(3));
  EXPECT_TRUE(i.Contains(7));
  EXPECT_FALSE(i.Contains(2));
  EXPECT_FALSE(i.Contains(8));
}

TEST(IntervalTest, SinglePointInterval) {
  const Interval i{4, 4};
  EXPECT_EQ(i.Length(), 1);
  EXPECT_TRUE(i.Contains(4));
}

TEST(IntervalTest, Intersects) {
  EXPECT_TRUE((Interval{0, 5}).Intersects(Interval{5, 9}));
  EXPECT_TRUE((Interval{0, 5}).Intersects(Interval{2, 3}));
  EXPECT_FALSE((Interval{0, 5}).Intersects(Interval{6, 9}));
  EXPECT_TRUE((Interval{2, 3}).Intersects(Interval{0, 10}));
}

TEST(IntervalTest, Within) {
  EXPECT_TRUE((Interval{2, 3}).Within(Interval{0, 10}));
  EXPECT_TRUE((Interval{0, 10}).Within(Interval{0, 10}));
  EXPECT_FALSE((Interval{0, 11}).Within(Interval{0, 10}));
}

TEST(IntervalTest, Expanded) {
  const Interval i = Interval{5, 8}.Expanded(3);
  EXPECT_EQ(i.begin, 2);
  EXPECT_EQ(i.end, 11);
  // Expansion may go negative; clamping is the domain's job.
  EXPECT_EQ((Interval{1, 2}).Expanded(5).begin, -4);
}

TEST(IntervalTest, EqualityAndToString) {
  EXPECT_EQ((Interval{1, 2}), (Interval{1, 2}));
  EXPECT_FALSE((Interval{1, 2}) == (Interval{1, 3}));
  EXPECT_EQ((Interval{1, 2}).ToString(), "[1, 2]");
}

TEST(TimeDomainTest, Bounds) {
  const TimeDomain d(100);
  EXPECT_EQ(d.num_timestamps(), 100);
  EXPECT_EQ(d.first(), 0);
  EXPECT_EQ(d.last(), 99);
  EXPECT_TRUE(d.Contains(0));
  EXPECT_TRUE(d.Contains(99));
  EXPECT_FALSE(d.Contains(-1));
  EXPECT_FALSE(d.Contains(100));
}

TEST(TimeDomainTest, ClampTimestamp) {
  const TimeDomain d(10);
  EXPECT_EQ(d.Clamp(Timestamp{-5}), 0);
  EXPECT_EQ(d.Clamp(Timestamp{5}), 5);
  EXPECT_EQ(d.Clamp(Timestamp{15}), 9);
}

TEST(TimeDomainTest, ClampInterval) {
  const TimeDomain d(10);
  const Interval c = d.Clamp(Interval{-3, 12});
  EXPECT_EQ(c.begin, 0);
  EXPECT_EQ(c.end, 9);
}

TEST(TimeDomainTest, Whole) {
  const TimeDomain d(42);
  EXPECT_EQ(d.Whole(), (Interval{0, 41}));
}

TEST(TimeDomainTest, DateRendering) {
  // Epoch day 0 == 2001-01-01 (start of the paper's Wikipedia window).
  const TimeDomain d(10000);
  EXPECT_EQ(d.ToDateString(0), "2001-01-01");
  EXPECT_EQ(d.ToDateString(30), "2001-01-31");
  EXPECT_EQ(d.ToDateString(31), "2001-02-01");
  EXPECT_EQ(d.ToDateString(365), "2002-01-01");
  // 2004 is a leap year: Feb 29 exists.
  // 2004-02-29 = 3 years (1096 days incl. leap 2004? check: 2001,2002,2003
  // are 365 each = 1095 days to 2004-01-01; +31 (Jan) + 28 = 1154 -> Feb 29.
  EXPECT_EQ(d.ToDateString(1095), "2004-01-01");
  EXPECT_EQ(d.ToDateString(1095 + 31 + 28), "2004-02-29");
  EXPECT_EQ(d.ToDateString(1095 + 31 + 29), "2004-03-01");
}

TEST(TimeDomainTest, SixteenYearWindowEndsLate2017) {
  // The paper's window: early 2001 to late 2017, ~6130 days.
  const TimeDomain d(6130);
  EXPECT_EQ(d.ToDateString(d.last()).substr(0, 4), "2017");
}

}  // namespace
}  // namespace tind
