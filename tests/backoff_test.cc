#include "common/backoff.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace tind {
namespace {

std::vector<uint64_t> Drain(ExponentialBackoff* b, size_t max_steps = 64) {
  std::vector<uint64_t> delays;
  uint64_t d = 0;
  while (delays.size() < max_steps && b->NextDelayUs(&d)) delays.push_back(d);
  return delays;
}

TEST(BackoffTest, DeterministicForFixedSeed) {
  BackoffOptions options;
  options.initial_us = 1000;
  options.max_us = 64000;
  ExponentialBackoff a(options, /*seed=*/42);
  ExponentialBackoff b(options, /*seed=*/42);
  EXPECT_EQ(Drain(&a, 16), Drain(&b, 16));
}

TEST(BackoffTest, SeedsDecorrelate) {
  BackoffOptions options;
  options.initial_us = 1000;
  options.max_us = 1u << 20;
  ExponentialBackoff a(options, /*seed=*/1);
  ExponentialBackoff b(options, /*seed=*/2);
  EXPECT_NE(Drain(&a, 16), Drain(&b, 16));
}

TEST(BackoffTest, DelaysRespectBounds) {
  BackoffOptions options;
  options.initial_us = 500;
  options.max_us = 8000;
  options.multiplier = 3.0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ExponentialBackoff backoff(options, seed);
    uint64_t prev = options.initial_us;
    for (int i = 0; i < 50; ++i) {
      uint64_t d = 0;
      ASSERT_TRUE(backoff.NextDelayUs(&d));
      EXPECT_GE(d, options.initial_us);
      EXPECT_LE(d, options.max_us);
      // Decorrelated-jitter recurrence: each draw is bounded by 3x the
      // previous sleep (or the global cap), not 3x the initial value.
      EXPECT_LE(d, std::max<uint64_t>(
                       options.initial_us,
                       std::min<uint64_t>(options.max_us,
                                          static_cast<uint64_t>(prev * 3.0))));
      prev = d;
    }
  }
}

TEST(BackoffTest, ExpectedDelayGrowsThenSaturates) {
  // Averaged over many seeds, early sleeps must be materially shorter than
  // late (saturated) sleeps — i.e. the schedule really is exponential-ish.
  BackoffOptions options;
  options.initial_us = 100;
  options.max_us = 100000;
  double first_sum = 0, late_sum = 0;
  const int kSeeds = 200;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    ExponentialBackoff backoff(options, static_cast<uint64_t>(seed));
    const std::vector<uint64_t> delays = Drain(&backoff, 12);
    ASSERT_EQ(delays.size(), 12u);
    first_sum += static_cast<double>(delays[0]);
    late_sum += static_cast<double>(delays[11]);
  }
  EXPECT_LT(first_sum / kSeeds, 400.0);       // E[first] = (100+300)/2 = 200
  EXPECT_GT(late_sum / kSeeds, first_sum / kSeeds * 10);
}

TEST(BackoffTest, MaxRetriesCapsSchedule) {
  BackoffOptions options;
  options.max_retries = 3;
  ExponentialBackoff backoff(options, 7);
  EXPECT_EQ(Drain(&backoff).size(), 3u);
  EXPECT_EQ(backoff.retries(), 3u);
  uint64_t d = 0;
  EXPECT_FALSE(backoff.NextDelayUs(&d));
}

TEST(BackoffTest, DeadlineCapsCumulativeSleep) {
  BackoffOptions options;
  options.initial_us = 1000;
  options.max_us = 1000000;
  options.deadline_us = 25000;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    ExponentialBackoff backoff(options, seed);
    const std::vector<uint64_t> delays = Drain(&backoff);
    uint64_t total = 0;
    for (uint64_t d : delays) total += d;
    EXPECT_LE(total, options.deadline_us) << "seed " << seed;
    EXPECT_EQ(total, backoff.total_delay_us());
    // The schedule must actually consume the budget, not stop early (the
    // last sleep is trimmed to land exactly on the deadline).
    EXPECT_EQ(total, options.deadline_us) << "seed " << seed;
  }
}

TEST(BackoffTest, ZeroDeadlineMeansUnbounded) {
  BackoffOptions options;
  options.deadline_us = 0;
  ExponentialBackoff backoff(options, 3);
  EXPECT_EQ(Drain(&backoff, 64).size(), 64u);
}

TEST(BackoffTest, ResetRestartsScheduleButNotRngStream) {
  BackoffOptions options;
  options.initial_us = 100;
  options.max_us = 100000;
  options.max_retries = 4;
  ExponentialBackoff backoff(options, 11);
  const std::vector<uint64_t> first = Drain(&backoff);
  EXPECT_EQ(first.size(), 4u);
  backoff.Reset();
  EXPECT_EQ(backoff.retries(), 0u);
  EXPECT_EQ(backoff.total_delay_us(), 0u);
  const std::vector<uint64_t> second = Drain(&backoff);
  EXPECT_EQ(second.size(), 4u);
  // Fresh episode restarts from initial_us (first delay small again)...
  EXPECT_LE(second[0], options.initial_us * 3);
  // ...but the RNG stream continues, so the episodes differ.
  EXPECT_NE(first, second);
}

TEST(BackoffTest, DegenerateOptionsAreSanitized) {
  BackoffOptions options;
  options.initial_us = 0;   // clamped to 1
  options.max_us = 0;       // clamped up to initial
  options.multiplier = 0.1; // clamped to 1.0
  ExponentialBackoff backoff(options, 5);
  uint64_t d = 0;
  ASSERT_TRUE(backoff.NextDelayUs(&d));
  EXPECT_EQ(d, 1u);
  ASSERT_TRUE(backoff.NextDelayUs(&d));
  EXPECT_EQ(d, 1u);
}

}  // namespace
}  // namespace tind
