/// Build-vs-load differential: a snapshot-loaded TindIndex must answer
/// Search / ReverseSearch / BatchSearch / BatchReverseSearch with results
/// AND QueryStats (everything but wall time) identical to the index Build()
/// returned — across an (ε, δ, weight) grid that exercises every pruning
/// stage, on every available SIMD backend including forced scalar. The
/// loaded index probes mmap'd borrowed planes while the built one probes
/// heap planes, so this is the proof that the zero-copy path is not merely
/// approximately right.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/simd.h"
#include "temporal/weights.h"
#include "tind/index.h"
#include "wiki/generator.h"

namespace tind {
namespace {

void ExpectSameStats(const QueryStats& loaded, const QueryStats& built,
                     const std::string& context) {
  EXPECT_EQ(loaded.initial_candidates, built.initial_candidates) << context;
  EXPECT_EQ(loaded.after_slices, built.after_slices) << context;
  EXPECT_EQ(loaded.after_exact_check, built.after_exact_check) << context;
  EXPECT_EQ(loaded.num_results, built.num_results) << context;
  EXPECT_EQ(loaded.validations, built.validations) << context;
  EXPECT_EQ(loaded.used_slices, built.used_slices) << context;
  EXPECT_EQ(loaded.used_prefilter, built.used_prefilter) << context;
}

struct GridPoint {
  double epsilon;
  int64_t delta;
  bool decay_weight;
};

// Strict; the build operating point; beyond build ε/δ (slices + M_R are
// skipped — the skip decision itself must round-trip).
constexpr GridPoint kGrid[] = {
    {0.0, 0, false},
    {3.0, 5, false},
    {6.0, 9, true},
};

class SnapshotDifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void TearDown() override { simd::ClearForcedBackend(); }
};

TEST_P(SnapshotDifferentialTest, LoadedIndexIsBitIdentical) {
  const uint64_t seed = GetParam();
  wiki::GeneratorOptions gen;
  gen.seed = seed;
  gen.num_days = 150;
  gen.num_families = 3;
  gen.num_noise_attributes = 18;
  gen.num_drifter_attributes = 8;
  gen.num_catchall_attributes = 2;
  gen.shared_vocabulary = 120;
  gen.entities_per_family_pool = 80;
  auto corpus = wiki::WikiGenerator(gen).GenerateDataset();
  ASSERT_TRUE(corpus.ok());
  const Dataset& dataset = corpus->dataset;
  const int64_t n_days = dataset.domain().num_timestamps();
  const ConstantWeight const_w(n_days);
  const ExponentialDecayWeight decay_w(n_days, 0.98);

  TindIndexOptions opts;
  opts.bloom_bits = 512;
  opts.num_hashes = 2;
  opts.num_slices = 6;
  opts.delta = 5;
  opts.epsilon = 3.0;
  opts.build_reverse_index = true;
  opts.reverse_slices = 2;
  opts.weight = &const_w;
  opts.seed = seed * 13 + 1;
  auto built = TindIndex::Build(dataset, opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const std::string path = ::testing::TempDir() + "/tind_snapshot_diff_" +
                           std::to_string(seed) + ".tsnap";
  ASSERT_TRUE((*built)->SaveSnapshot(path).ok());
  SnapshotLoadOptions load_options;
  load_options.weight = &const_w;
  auto loaded = TindIndex::LoadSnapshot(dataset, path, load_options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());
  ASSERT_TRUE((*loaded)->loaded_from_snapshot());

  const size_t n_attrs = dataset.size();
  std::vector<const AttributeHistory*> batch;
  for (size_t q = 0; q < n_attrs; ++q) {
    batch.push_back(&dataset.attribute(static_cast<AttributeId>(q)));
  }

  for (const simd::Backend backend : simd::AvailableBackends()) {
    ASSERT_TRUE(simd::ForceBackend(backend));
    const std::string backend_name(simd::BackendName(backend));
    for (const GridPoint& point : kGrid) {
      const WeightFunction* w =
          point.decay_weight ? static_cast<const WeightFunction*>(&decay_w)
                             : &const_w;
      const TindParams params{point.epsilon, point.delta, w};
      const std::string grid_ctx = backend_name + " eps=" +
                                   std::to_string(point.epsilon) +
                                   " delta=" + std::to_string(point.delta);

      for (size_t q = 0; q < n_attrs; ++q) {
        const AttributeHistory& query =
            dataset.attribute(static_cast<AttributeId>(q));
        const std::string ctx = grid_ctx + " q=" + std::to_string(q);
        QueryStats bs, ls;
        EXPECT_EQ((*loaded)->Search(query, params, &ls),
                  (*built)->Search(query, params, &bs))
            << "forward " << ctx;
        ExpectSameStats(ls, bs, "forward " + ctx);
        QueryStats brs, lrs;
        EXPECT_EQ((*loaded)->ReverseSearch(query, params, &lrs),
                  (*built)->ReverseSearch(query, params, &brs))
            << "reverse " << ctx;
        ExpectSameStats(lrs, brs, "reverse " + ctx);
      }

      std::vector<QueryStats> built_stats, loaded_stats;
      EXPECT_EQ((*loaded)->BatchSearch(batch, params, &loaded_stats),
                (*built)->BatchSearch(batch, params, &built_stats))
          << "batch forward " << grid_ctx;
      ASSERT_EQ(loaded_stats.size(), built_stats.size());
      for (size_t q = 0; q < built_stats.size(); ++q) {
        ExpectSameStats(loaded_stats[q], built_stats[q],
                        "batch forward " + grid_ctx + " q=" + std::to_string(q));
      }
      EXPECT_EQ((*loaded)->BatchReverseSearch(batch, params, &loaded_stats),
                (*built)->BatchReverseSearch(batch, params, &built_stats))
          << "batch reverse " << grid_ctx;
      ASSERT_EQ(loaded_stats.size(), built_stats.size());
      for (size_t q = 0; q < built_stats.size(); ++q) {
        ExpectSameStats(loaded_stats[q], built_stats[q],
                        "batch reverse " + grid_ctx + " q=" + std::to_string(q));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotDifferentialTest,
                         ::testing::Values(3u, 11u));

}  // namespace
}  // namespace tind
