# Empty dependencies file for reverse_search.
# This may be replaced when dependencies are built.
