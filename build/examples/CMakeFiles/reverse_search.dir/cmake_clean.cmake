file(REMOVE_RECURSE
  "CMakeFiles/reverse_search.dir/reverse_search.cpp.o"
  "CMakeFiles/reverse_search.dir/reverse_search.cpp.o.d"
  "reverse_search"
  "reverse_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
