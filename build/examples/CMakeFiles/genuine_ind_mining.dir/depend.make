# Empty dependencies file for genuine_ind_mining.
# This may be replaced when dependencies are built.
