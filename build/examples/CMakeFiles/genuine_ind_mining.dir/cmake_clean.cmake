file(REMOVE_RECURSE
  "CMakeFiles/genuine_ind_mining.dir/genuine_ind_mining.cpp.o"
  "CMakeFiles/genuine_ind_mining.dir/genuine_ind_mining.cpp.o.d"
  "genuine_ind_mining"
  "genuine_ind_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genuine_ind_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
