file(REMOVE_RECURSE
  "CMakeFiles/wiki_exploration.dir/wiki_exploration.cpp.o"
  "CMakeFiles/wiki_exploration.dir/wiki_exploration.cpp.o.d"
  "wiki_exploration"
  "wiki_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiki_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
