# Empty dependencies file for wiki_exploration.
# This may be replaced when dependencies are built.
