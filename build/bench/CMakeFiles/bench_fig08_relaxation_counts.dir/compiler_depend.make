# Empty compiler generated dependencies file for bench_fig08_relaxation_counts.
# This may be replaced when dependencies are built.
