file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_relaxation_counts.dir/bench_fig08_relaxation_counts.cc.o"
  "CMakeFiles/bench_fig08_relaxation_counts.dir/bench_fig08_relaxation_counts.cc.o.d"
  "CMakeFiles/bench_fig08_relaxation_counts.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig08_relaxation_counts.dir/bench_util.cc.o.d"
  "bench_fig08_relaxation_counts"
  "bench_fig08_relaxation_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_relaxation_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
