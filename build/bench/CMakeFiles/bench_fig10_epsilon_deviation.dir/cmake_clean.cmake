file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_epsilon_deviation.dir/bench_fig10_epsilon_deviation.cc.o"
  "CMakeFiles/bench_fig10_epsilon_deviation.dir/bench_fig10_epsilon_deviation.cc.o.d"
  "CMakeFiles/bench_fig10_epsilon_deviation.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig10_epsilon_deviation.dir/bench_util.cc.o.d"
  "bench_fig10_epsilon_deviation"
  "bench_fig10_epsilon_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_epsilon_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
