# Empty dependencies file for bench_fig10_epsilon_deviation.
# This may be replaced when dependencies are built.
