file(REMOVE_RECURSE
  "CMakeFiles/bench_bloom_micro.dir/bench_bloom_micro.cc.o"
  "CMakeFiles/bench_bloom_micro.dir/bench_bloom_micro.cc.o.d"
  "CMakeFiles/bench_bloom_micro.dir/bench_util.cc.o"
  "CMakeFiles/bench_bloom_micro.dir/bench_util.cc.o.d"
  "bench_bloom_micro"
  "bench_bloom_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bloom_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
