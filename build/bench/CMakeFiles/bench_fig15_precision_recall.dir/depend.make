# Empty dependencies file for bench_fig15_precision_recall.
# This may be replaced when dependencies are built.
