# Empty dependencies file for bench_table2_buckets.
# This may be replaced when dependencies are built.
