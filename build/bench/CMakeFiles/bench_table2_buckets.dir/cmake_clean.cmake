file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_buckets.dir/bench_table2_buckets.cc.o"
  "CMakeFiles/bench_table2_buckets.dir/bench_table2_buckets.cc.o.d"
  "CMakeFiles/bench_table2_buckets.dir/bench_util.cc.o"
  "CMakeFiles/bench_table2_buckets.dir/bench_util.cc.o.d"
  "bench_table2_buckets"
  "bench_table2_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
