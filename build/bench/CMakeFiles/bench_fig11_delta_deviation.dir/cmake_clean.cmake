file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_delta_deviation.dir/bench_fig11_delta_deviation.cc.o"
  "CMakeFiles/bench_fig11_delta_deviation.dir/bench_fig11_delta_deviation.cc.o.d"
  "CMakeFiles/bench_fig11_delta_deviation.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig11_delta_deviation.dir/bench_util.cc.o.d"
  "bench_fig11_delta_deviation"
  "bench_fig11_delta_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_delta_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
