# Empty compiler generated dependencies file for bench_fig11_delta_deviation.
# This may be replaced when dependencies are built.
