file(REMOVE_RECURSE
  "CMakeFiles/bench_allpairs.dir/bench_allpairs.cc.o"
  "CMakeFiles/bench_allpairs.dir/bench_allpairs.cc.o.d"
  "CMakeFiles/bench_allpairs.dir/bench_util.cc.o"
  "CMakeFiles/bench_allpairs.dir/bench_util.cc.o.d"
  "bench_allpairs"
  "bench_allpairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allpairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
