# Empty dependencies file for bench_allpairs.
# This may be replaced when dependencies are built.
