file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_time_slices_reverse.dir/bench_fig14_time_slices_reverse.cc.o"
  "CMakeFiles/bench_fig14_time_slices_reverse.dir/bench_fig14_time_slices_reverse.cc.o.d"
  "CMakeFiles/bench_fig14_time_slices_reverse.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig14_time_slices_reverse.dir/bench_util.cc.o.d"
  "bench_fig14_time_slices_reverse"
  "bench_fig14_time_slices_reverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_time_slices_reverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
