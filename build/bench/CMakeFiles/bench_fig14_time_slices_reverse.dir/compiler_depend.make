# Empty compiler generated dependencies file for bench_fig14_time_slices_reverse.
# This may be replaced when dependencies are built.
