file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_time_slices_search.dir/bench_fig13_time_slices_search.cc.o"
  "CMakeFiles/bench_fig13_time_slices_search.dir/bench_fig13_time_slices_search.cc.o.d"
  "CMakeFiles/bench_fig13_time_slices_search.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig13_time_slices_search.dir/bench_util.cc.o.d"
  "bench_fig13_time_slices_search"
  "bench_fig13_time_slices_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_time_slices_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
