# Empty dependencies file for bench_fig13_time_slices_search.
# This may be replaced when dependencies are built.
