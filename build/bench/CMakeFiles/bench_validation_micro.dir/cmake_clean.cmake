file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_micro.dir/bench_util.cc.o"
  "CMakeFiles/bench_validation_micro.dir/bench_util.cc.o.d"
  "CMakeFiles/bench_validation_micro.dir/bench_validation_micro.cc.o"
  "CMakeFiles/bench_validation_micro.dir/bench_validation_micro.cc.o.d"
  "bench_validation_micro"
  "bench_validation_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
