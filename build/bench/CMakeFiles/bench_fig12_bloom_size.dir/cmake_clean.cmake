file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_bloom_size.dir/bench_fig12_bloom_size.cc.o"
  "CMakeFiles/bench_fig12_bloom_size.dir/bench_fig12_bloom_size.cc.o.d"
  "CMakeFiles/bench_fig12_bloom_size.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig12_bloom_size.dir/bench_util.cc.o.d"
  "bench_fig12_bloom_size"
  "bench_fig12_bloom_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_bloom_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
