# Empty compiler generated dependencies file for bench_fig12_bloom_size.
# This may be replaced when dependencies are built.
