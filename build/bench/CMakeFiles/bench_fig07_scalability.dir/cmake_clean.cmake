file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_scalability.dir/bench_fig07_scalability.cc.o"
  "CMakeFiles/bench_fig07_scalability.dir/bench_fig07_scalability.cc.o.d"
  "CMakeFiles/bench_fig07_scalability.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig07_scalability.dir/bench_util.cc.o.d"
  "bench_fig07_scalability"
  "bench_fig07_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
