file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_relaxation_runtime.dir/bench_fig09_relaxation_runtime.cc.o"
  "CMakeFiles/bench_fig09_relaxation_runtime.dir/bench_fig09_relaxation_runtime.cc.o.d"
  "CMakeFiles/bench_fig09_relaxation_runtime.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig09_relaxation_runtime.dir/bench_util.cc.o.d"
  "bench_fig09_relaxation_runtime"
  "bench_fig09_relaxation_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_relaxation_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
