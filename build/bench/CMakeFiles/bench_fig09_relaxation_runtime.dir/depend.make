# Empty dependencies file for bench_fig09_relaxation_runtime.
# This may be replaced when dependencies are built.
