# Empty compiler generated dependencies file for validator_property_test.
# This may be replaced when dependencies are built.
