file(REMOVE_RECURSE
  "CMakeFiles/validator_property_test.dir/validator_property_test.cc.o"
  "CMakeFiles/validator_property_test.dir/validator_property_test.cc.o.d"
  "validator_property_test"
  "validator_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validator_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
