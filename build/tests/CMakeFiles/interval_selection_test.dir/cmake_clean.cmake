file(REMOVE_RECURSE
  "CMakeFiles/interval_selection_test.dir/interval_selection_test.cc.o"
  "CMakeFiles/interval_selection_test.dir/interval_selection_test.cc.o.d"
  "interval_selection_test"
  "interval_selection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
