# Empty dependencies file for attribute_history_test.
# This may be replaced when dependencies are built.
