file(REMOVE_RECURSE
  "CMakeFiles/attribute_history_test.dir/attribute_history_test.cc.o"
  "CMakeFiles/attribute_history_test.dir/attribute_history_test.cc.o.d"
  "attribute_history_test"
  "attribute_history_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
