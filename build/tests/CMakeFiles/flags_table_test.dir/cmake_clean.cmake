file(REMOVE_RECURSE
  "CMakeFiles/flags_table_test.dir/flags_table_test.cc.o"
  "CMakeFiles/flags_table_test.dir/flags_table_test.cc.o.d"
  "flags_table_test"
  "flags_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flags_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
