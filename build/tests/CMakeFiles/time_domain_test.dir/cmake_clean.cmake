file(REMOVE_RECURSE
  "CMakeFiles/time_domain_test.dir/time_domain_test.cc.o"
  "CMakeFiles/time_domain_test.dir/time_domain_test.cc.o.d"
  "time_domain_test"
  "time_domain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
