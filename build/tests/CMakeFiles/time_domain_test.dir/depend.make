# Empty dependencies file for time_domain_test.
# This may be replaced when dependencies are built.
