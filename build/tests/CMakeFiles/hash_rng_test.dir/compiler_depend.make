# Empty compiler generated dependencies file for hash_rng_test.
# This may be replaced when dependencies are built.
