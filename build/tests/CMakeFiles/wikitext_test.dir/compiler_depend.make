# Empty compiler generated dependencies file for wikitext_test.
# This may be replaced when dependencies are built.
