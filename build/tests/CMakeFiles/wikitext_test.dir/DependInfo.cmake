
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wikitext_test.cc" "tests/CMakeFiles/wikitext_test.dir/wikitext_test.cc.o" "gcc" "tests/CMakeFiles/wikitext_test.dir/wikitext_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/tind_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/wiki/CMakeFiles/tind_wiki.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/tind_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/tind/CMakeFiles/tind_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/tind_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/tind_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tind_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
