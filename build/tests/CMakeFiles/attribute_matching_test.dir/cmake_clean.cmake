file(REMOVE_RECURSE
  "CMakeFiles/attribute_matching_test.dir/attribute_matching_test.cc.o"
  "CMakeFiles/attribute_matching_test.dir/attribute_matching_test.cc.o.d"
  "attribute_matching_test"
  "attribute_matching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
