# Empty compiler generated dependencies file for attribute_matching_test.
# This may be replaced when dependencies are built.
