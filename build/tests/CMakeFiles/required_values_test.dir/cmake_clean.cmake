file(REMOVE_RECURSE
  "CMakeFiles/required_values_test.dir/required_values_test.cc.o"
  "CMakeFiles/required_values_test.dir/required_values_test.cc.o.d"
  "required_values_test"
  "required_values_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/required_values_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
