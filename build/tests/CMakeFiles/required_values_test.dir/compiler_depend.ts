# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for required_values_test.
