# Empty dependencies file for required_values_test.
# This may be replaced when dependencies are built.
