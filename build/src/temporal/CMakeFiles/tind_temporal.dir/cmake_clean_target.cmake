file(REMOVE_RECURSE
  "libtind_temporal.a"
)
