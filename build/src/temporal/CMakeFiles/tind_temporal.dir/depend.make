# Empty dependencies file for tind_temporal.
# This may be replaced when dependencies are built.
