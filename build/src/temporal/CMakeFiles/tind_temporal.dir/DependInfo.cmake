
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/temporal/attribute_history.cc" "src/temporal/CMakeFiles/tind_temporal.dir/attribute_history.cc.o" "gcc" "src/temporal/CMakeFiles/tind_temporal.dir/attribute_history.cc.o.d"
  "/root/repo/src/temporal/dataset.cc" "src/temporal/CMakeFiles/tind_temporal.dir/dataset.cc.o" "gcc" "src/temporal/CMakeFiles/tind_temporal.dir/dataset.cc.o.d"
  "/root/repo/src/temporal/time_domain.cc" "src/temporal/CMakeFiles/tind_temporal.dir/time_domain.cc.o" "gcc" "src/temporal/CMakeFiles/tind_temporal.dir/time_domain.cc.o.d"
  "/root/repo/src/temporal/value_dictionary.cc" "src/temporal/CMakeFiles/tind_temporal.dir/value_dictionary.cc.o" "gcc" "src/temporal/CMakeFiles/tind_temporal.dir/value_dictionary.cc.o.d"
  "/root/repo/src/temporal/value_set.cc" "src/temporal/CMakeFiles/tind_temporal.dir/value_set.cc.o" "gcc" "src/temporal/CMakeFiles/tind_temporal.dir/value_set.cc.o.d"
  "/root/repo/src/temporal/weights.cc" "src/temporal/CMakeFiles/tind_temporal.dir/weights.cc.o" "gcc" "src/temporal/CMakeFiles/tind_temporal.dir/weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tind_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
