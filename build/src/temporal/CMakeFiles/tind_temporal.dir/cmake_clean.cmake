file(REMOVE_RECURSE
  "CMakeFiles/tind_temporal.dir/attribute_history.cc.o"
  "CMakeFiles/tind_temporal.dir/attribute_history.cc.o.d"
  "CMakeFiles/tind_temporal.dir/dataset.cc.o"
  "CMakeFiles/tind_temporal.dir/dataset.cc.o.d"
  "CMakeFiles/tind_temporal.dir/time_domain.cc.o"
  "CMakeFiles/tind_temporal.dir/time_domain.cc.o.d"
  "CMakeFiles/tind_temporal.dir/value_dictionary.cc.o"
  "CMakeFiles/tind_temporal.dir/value_dictionary.cc.o.d"
  "CMakeFiles/tind_temporal.dir/value_set.cc.o"
  "CMakeFiles/tind_temporal.dir/value_set.cc.o.d"
  "CMakeFiles/tind_temporal.dir/weights.cc.o"
  "CMakeFiles/tind_temporal.dir/weights.cc.o.d"
  "libtind_temporal.a"
  "libtind_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tind_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
