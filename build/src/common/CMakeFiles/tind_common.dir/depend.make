# Empty dependencies file for tind_common.
# This may be replaced when dependencies are built.
