file(REMOVE_RECURSE
  "libtind_common.a"
)
