file(REMOVE_RECURSE
  "CMakeFiles/tind_common.dir/bitvector.cc.o"
  "CMakeFiles/tind_common.dir/bitvector.cc.o.d"
  "CMakeFiles/tind_common.dir/flags.cc.o"
  "CMakeFiles/tind_common.dir/flags.cc.o.d"
  "CMakeFiles/tind_common.dir/status.cc.o"
  "CMakeFiles/tind_common.dir/status.cc.o.d"
  "CMakeFiles/tind_common.dir/table_printer.cc.o"
  "CMakeFiles/tind_common.dir/table_printer.cc.o.d"
  "CMakeFiles/tind_common.dir/thread_pool.cc.o"
  "CMakeFiles/tind_common.dir/thread_pool.cc.o.d"
  "libtind_common.a"
  "libtind_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tind_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
