# Empty compiler generated dependencies file for tind_eval.
# This may be replaced when dependencies are built.
