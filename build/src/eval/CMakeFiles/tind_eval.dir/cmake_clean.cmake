file(REMOVE_RECURSE
  "CMakeFiles/tind_eval.dir/buckets.cc.o"
  "CMakeFiles/tind_eval.dir/buckets.cc.o.d"
  "CMakeFiles/tind_eval.dir/grid_search.cc.o"
  "CMakeFiles/tind_eval.dir/grid_search.cc.o.d"
  "CMakeFiles/tind_eval.dir/precision_recall.cc.o"
  "CMakeFiles/tind_eval.dir/precision_recall.cc.o.d"
  "CMakeFiles/tind_eval.dir/runtime_stats.cc.o"
  "CMakeFiles/tind_eval.dir/runtime_stats.cc.o.d"
  "libtind_eval.a"
  "libtind_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tind_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
