file(REMOVE_RECURSE
  "libtind_eval.a"
)
