
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/buckets.cc" "src/eval/CMakeFiles/tind_eval.dir/buckets.cc.o" "gcc" "src/eval/CMakeFiles/tind_eval.dir/buckets.cc.o.d"
  "/root/repo/src/eval/grid_search.cc" "src/eval/CMakeFiles/tind_eval.dir/grid_search.cc.o" "gcc" "src/eval/CMakeFiles/tind_eval.dir/grid_search.cc.o.d"
  "/root/repo/src/eval/precision_recall.cc" "src/eval/CMakeFiles/tind_eval.dir/precision_recall.cc.o" "gcc" "src/eval/CMakeFiles/tind_eval.dir/precision_recall.cc.o.d"
  "/root/repo/src/eval/runtime_stats.cc" "src/eval/CMakeFiles/tind_eval.dir/runtime_stats.cc.o" "gcc" "src/eval/CMakeFiles/tind_eval.dir/runtime_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tind/CMakeFiles/tind_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/tind_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/wiki/CMakeFiles/tind_wiki.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/tind_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/tind_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tind_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
