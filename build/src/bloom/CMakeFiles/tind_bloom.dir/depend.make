# Empty dependencies file for tind_bloom.
# This may be replaced when dependencies are built.
