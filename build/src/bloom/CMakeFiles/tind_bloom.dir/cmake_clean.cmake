file(REMOVE_RECURSE
  "CMakeFiles/tind_bloom.dir/bloom_filter.cc.o"
  "CMakeFiles/tind_bloom.dir/bloom_filter.cc.o.d"
  "CMakeFiles/tind_bloom.dir/bloom_matrix.cc.o"
  "CMakeFiles/tind_bloom.dir/bloom_matrix.cc.o.d"
  "libtind_bloom.a"
  "libtind_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tind_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
