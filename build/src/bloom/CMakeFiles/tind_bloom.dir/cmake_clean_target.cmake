file(REMOVE_RECURSE
  "libtind_bloom.a"
)
