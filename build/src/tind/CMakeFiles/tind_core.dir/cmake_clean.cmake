file(REMOVE_RECURSE
  "CMakeFiles/tind_core.dir/discovery.cc.o"
  "CMakeFiles/tind_core.dir/discovery.cc.o.d"
  "CMakeFiles/tind_core.dir/index.cc.o"
  "CMakeFiles/tind_core.dir/index.cc.o.d"
  "CMakeFiles/tind_core.dir/interval_selection.cc.o"
  "CMakeFiles/tind_core.dir/interval_selection.cc.o.d"
  "CMakeFiles/tind_core.dir/partial.cc.o"
  "CMakeFiles/tind_core.dir/partial.cc.o.d"
  "CMakeFiles/tind_core.dir/required_values.cc.o"
  "CMakeFiles/tind_core.dir/required_values.cc.o.d"
  "CMakeFiles/tind_core.dir/validator.cc.o"
  "CMakeFiles/tind_core.dir/validator.cc.o.d"
  "libtind_core.a"
  "libtind_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tind_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
