
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tind/discovery.cc" "src/tind/CMakeFiles/tind_core.dir/discovery.cc.o" "gcc" "src/tind/CMakeFiles/tind_core.dir/discovery.cc.o.d"
  "/root/repo/src/tind/index.cc" "src/tind/CMakeFiles/tind_core.dir/index.cc.o" "gcc" "src/tind/CMakeFiles/tind_core.dir/index.cc.o.d"
  "/root/repo/src/tind/interval_selection.cc" "src/tind/CMakeFiles/tind_core.dir/interval_selection.cc.o" "gcc" "src/tind/CMakeFiles/tind_core.dir/interval_selection.cc.o.d"
  "/root/repo/src/tind/partial.cc" "src/tind/CMakeFiles/tind_core.dir/partial.cc.o" "gcc" "src/tind/CMakeFiles/tind_core.dir/partial.cc.o.d"
  "/root/repo/src/tind/required_values.cc" "src/tind/CMakeFiles/tind_core.dir/required_values.cc.o" "gcc" "src/tind/CMakeFiles/tind_core.dir/required_values.cc.o.d"
  "/root/repo/src/tind/validator.cc" "src/tind/CMakeFiles/tind_core.dir/validator.cc.o" "gcc" "src/tind/CMakeFiles/tind_core.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tind_common.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/tind_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/tind_bloom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
