file(REMOVE_RECURSE
  "libtind_core.a"
)
