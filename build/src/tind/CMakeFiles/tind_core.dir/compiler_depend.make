# Empty compiler generated dependencies file for tind_core.
# This may be replaced when dependencies are built.
