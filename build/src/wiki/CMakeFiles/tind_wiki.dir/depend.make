# Empty dependencies file for tind_wiki.
# This may be replaced when dependencies are built.
