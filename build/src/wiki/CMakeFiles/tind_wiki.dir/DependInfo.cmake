
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wiki/attribute_matching.cc" "src/wiki/CMakeFiles/tind_wiki.dir/attribute_matching.cc.o" "gcc" "src/wiki/CMakeFiles/tind_wiki.dir/attribute_matching.cc.o.d"
  "/root/repo/src/wiki/corpus_io.cc" "src/wiki/CMakeFiles/tind_wiki.dir/corpus_io.cc.o" "gcc" "src/wiki/CMakeFiles/tind_wiki.dir/corpus_io.cc.o.d"
  "/root/repo/src/wiki/generator.cc" "src/wiki/CMakeFiles/tind_wiki.dir/generator.cc.o" "gcc" "src/wiki/CMakeFiles/tind_wiki.dir/generator.cc.o.d"
  "/root/repo/src/wiki/preprocess.cc" "src/wiki/CMakeFiles/tind_wiki.dir/preprocess.cc.o" "gcc" "src/wiki/CMakeFiles/tind_wiki.dir/preprocess.cc.o.d"
  "/root/repo/src/wiki/raw_table.cc" "src/wiki/CMakeFiles/tind_wiki.dir/raw_table.cc.o" "gcc" "src/wiki/CMakeFiles/tind_wiki.dir/raw_table.cc.o.d"
  "/root/repo/src/wiki/wikitext.cc" "src/wiki/CMakeFiles/tind_wiki.dir/wikitext.cc.o" "gcc" "src/wiki/CMakeFiles/tind_wiki.dir/wikitext.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tind/CMakeFiles/tind_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/tind_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/tind_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tind_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
