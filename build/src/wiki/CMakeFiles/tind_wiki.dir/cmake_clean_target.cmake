file(REMOVE_RECURSE
  "libtind_wiki.a"
)
