file(REMOVE_RECURSE
  "CMakeFiles/tind_wiki.dir/attribute_matching.cc.o"
  "CMakeFiles/tind_wiki.dir/attribute_matching.cc.o.d"
  "CMakeFiles/tind_wiki.dir/corpus_io.cc.o"
  "CMakeFiles/tind_wiki.dir/corpus_io.cc.o.d"
  "CMakeFiles/tind_wiki.dir/generator.cc.o"
  "CMakeFiles/tind_wiki.dir/generator.cc.o.d"
  "CMakeFiles/tind_wiki.dir/preprocess.cc.o"
  "CMakeFiles/tind_wiki.dir/preprocess.cc.o.d"
  "CMakeFiles/tind_wiki.dir/raw_table.cc.o"
  "CMakeFiles/tind_wiki.dir/raw_table.cc.o.d"
  "CMakeFiles/tind_wiki.dir/wikitext.cc.o"
  "CMakeFiles/tind_wiki.dir/wikitext.cc.o.d"
  "libtind_wiki.a"
  "libtind_wiki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tind_wiki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
