
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/k_many.cc" "src/baseline/CMakeFiles/tind_baseline.dir/k_many.cc.o" "gcc" "src/baseline/CMakeFiles/tind_baseline.dir/k_many.cc.o.d"
  "/root/repo/src/baseline/static_ind.cc" "src/baseline/CMakeFiles/tind_baseline.dir/static_ind.cc.o" "gcc" "src/baseline/CMakeFiles/tind_baseline.dir/static_ind.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tind/CMakeFiles/tind_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/tind_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/tind_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tind_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
