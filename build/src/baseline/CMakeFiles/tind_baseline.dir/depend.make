# Empty dependencies file for tind_baseline.
# This may be replaced when dependencies are built.
