file(REMOVE_RECURSE
  "libtind_baseline.a"
)
