file(REMOVE_RECURSE
  "CMakeFiles/tind_baseline.dir/k_many.cc.o"
  "CMakeFiles/tind_baseline.dir/k_many.cc.o.d"
  "CMakeFiles/tind_baseline.dir/static_ind.cc.o"
  "CMakeFiles/tind_baseline.dir/static_ind.cc.o.d"
  "libtind_baseline.a"
  "libtind_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tind_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
